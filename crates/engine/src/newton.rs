//! Newton–Raphson solution of the stamped MNA system.

use crate::error::Result;
use crate::mna::{LinKey, MnaSystem, MnaWorkspace, StampInput};
use crate::options::SimOptions;
use crate::parstamp::StampExecutor;
use crate::solver::{DirectLu, SolverBackend};
use crate::stats::SimStats;
use std::time::Instant;
use wavepipe_sparse::SparseError;
use wavepipe_telemetry::{Counter, EventKind, Family};

/// Cached linear-solver state: the solver backend holding the current
/// factorization (reused across stamps with the fixed pattern) and solve
/// scratch buffers, plus the chord/modified-Newton bookkeeping that decides
/// when the factors may be reused as-is.
///
/// All factor/refactor/solve traffic goes through the [`SolverBackend`]
/// seam — the Newton loop itself never touches `SparseLu` directly. With
/// the default [`DirectLu`] backend the behaviour (and every waveform bit)
/// is identical to the historical direct calls; see
/// [`crate::solver`] for the determinism contract.
#[derive(Debug)]
pub struct LinearCache {
    backend: Box<dyn SolverBackend>,
    pub(crate) x_new: Vec<f64>,
    scratch: Vec<f64>,
    resid: Vec<f64>,
    /// Linear-stamp key the cached factors were computed under. Chord reuse
    /// is only legal while the key matches (same `h`, same `gshunt`, same
    /// analysis mode); `None` disables reuse until the next factorization.
    key: Option<LinKey>,
    /// Newton update norm of the previous iterate in the current solve, for
    /// the contraction-rate gate. Reset at the start of every solve.
    last_dx: Option<f64>,
}

impl Default for LinearCache {
    fn default() -> Self {
        LinearCache {
            backend: Box::new(DirectLu::new()),
            x_new: Vec::new(),
            scratch: Vec::new(),
            resid: Vec::new(),
            key: None,
            last_dx: None,
        }
    }
}

impl Clone for LinearCache {
    fn clone(&self) -> Self {
        LinearCache {
            backend: self.backend.clone_box(),
            x_new: self.x_new.clone(),
            scratch: self.scratch.clone(),
            resid: self.resid.clone(),
            key: self.key,
            last_dx: self.last_dx,
        }
    }
}

impl LinearCache {
    /// Fresh cache whose backend is chosen by the options' solver handle
    /// (the injectable path every analysis entry point uses).
    pub fn for_options(opts: &SimOptions) -> Self {
        LinearCache::with_backend(opts.solver.make())
    }

    /// Fresh cache around an explicit backend.
    pub fn with_backend(backend: Box<dyn SolverBackend>) -> Self {
        LinearCache { backend, ..LinearCache::default() }
    }

    /// Drops the cached factorization (forces a fresh pivot search next time).
    pub fn invalidate(&mut self) {
        self.backend.invalidate();
        self.key = None;
        self.last_dx = None;
    }

    /// Starts a new Newton solve: resets the contraction-rate history (the
    /// factors themselves stay reusable if their key still matches).
    pub fn begin_solve(&mut self) {
        self.last_dx = None;
    }

    /// Notes a rejected time point: the factors were computed at a state the
    /// controller abandoned, so chord reuse must re-qualify via a fresh
    /// factorization.
    pub fn note_rejection(&mut self) {
        self.key = None;
        self.last_dx = None;
    }

    /// Dismantles the cache into the seed state a lane of the packed batch
    /// tier continues from: the direct LU factors (if the backend can
    /// surrender them — see [`SolverBackend::take_lu`]), the linear-stamp
    /// key and chord contraction-rate those factors were computed under, and
    /// the reusable solve buffers.
    #[allow(clippy::type_complexity)]
    pub(crate) fn into_lane_seed(
        self,
    ) -> (
        Option<wavepipe_sparse::SparseLu>,
        Option<LinKey>,
        Option<f64>,
        Vec<f64>,
        Vec<f64>,
        Vec<f64>,
    ) {
        let LinearCache { mut backend, x_new, scratch, resid, key, last_dx } = self;
        (backend.take_lu(), key, last_dx, x_new, scratch, resid)
    }

    /// Produces the next Newton iterate in `self.x_new` for the freshly
    /// stamped system, preferring the cheapest path that can be trusted:
    ///
    /// 1. **Chord reuse** (when enabled, un-limited, and the linear-stamp key
    ///    matches the cached factors): one triangular solve of the delta form
    ///    `dx = LU⁻¹(rhs − A·x)`, accepted only while the update norms keep
    ///    contracting at rate `chord_theta`.
    /// 2. Frozen-pivot refactorization of the existing pivot order.
    /// 3. Fresh factorization with full pivot search.
    ///
    /// Paths 2–3 are *verified* against the residual `rhs - A x`; if the
    /// backward error is large (degraded frozen pivots, severe
    /// ill-conditioning) the matrix is re-factored from scratch and solved
    /// again. Returns `Ok(false)` if even the fresh factorization cannot
    /// produce a trustworthy solution — the caller should treat the iterate
    /// as non-convergent.
    fn factor_and_solve(
        &mut self,
        ws: &MnaWorkspace,
        input: &StampInput<'_>,
        x: &[f64],
        opts: &SimOptions,
        stats: &mut SimStats,
    ) -> Result<bool> {
        // Snapshot the backend's Krylov counters (None on direct backends)
        // so the iterative path's work is charged per linear solve — even
        // when the inner call errors out.
        let before = self.backend.krylov_stats();
        let out = self.factor_and_solve_inner(ws, input, x, opts, stats);
        if let (Some(b), Some(a)) = (before, self.backend.krylov_stats()) {
            let iters = a.iterations - b.iterations;
            let restarts = a.restarts - b.restarts;
            let refreshes = a.precond_refreshes - b.precond_refreshes;
            let fallbacks = a.fallbacks - b.fallbacks;
            if iters + restarts + refreshes + fallbacks > 0 {
                stats.krylov_iterations += iters as usize;
                stats.precond_refreshes += refreshes as usize;
                stats.solver_fallbacks += fallbacks as usize;
                opts.probe.emit(
                    input.time,
                    EventKind::KrylovSolve {
                        iterations: iters as u32,
                        restarts: restarts as u32,
                        precond_refreshes: refreshes as u32,
                        fallback: fallbacks > 0,
                    },
                );
                if opts.metrics.enabled() {
                    publish_krylov_metrics(opts, iters, refreshes, fallbacks);
                }
            }
        }
        out
    }

    fn factor_and_solve_inner(
        &mut self,
        ws: &MnaWorkspace,
        input: &StampInput<'_>,
        x: &[f64],
        opts: &SimOptions,
        stats: &mut SimStats,
    ) -> Result<bool> {
        let n = ws.rhs.len();
        self.x_new.resize(n, 0.0);
        self.scratch.resize(n, 0.0);
        self.resid.resize(n, 0.0);
        let key = LinKey::of(input);
        if opts.chord_newton && !ws.limited && self.backend.factored() && self.key == Some(key) {
            // Chord step: solve the delta form against the *stale* factors
            // but the *fresh* matrix/RHS, so the fixed point is unchanged.
            ws.matrix.residual_into(x, &ws.rhs, &mut self.resid)?;
            self.backend.solve(&self.resid, &mut self.x_new, &mut self.scratch)?;
            stats.solves += 1;
            let dxn = wavepipe_sparse::vector::norm_inf(&self.x_new);
            let contracting = match self.last_dx {
                None => true,
                Some(prev) => dxn <= opts.chord_theta * prev,
            };
            if dxn.is_finite() && contracting {
                for (xn, &xi) in self.x_new.iter_mut().zip(x) {
                    *xn += xi;
                }
                self.last_dx = Some(dxn);
                stats.jacobian_reuses += 1;
                return Ok(true);
            }
            // Contraction stalled (or blew up): pay for a factorization of
            // the current Jacobian this iteration.
        }
        for attempt in 0..2 {
            let fresh = !self.backend.factored() || attempt > 0;
            if fresh {
                self.backend.factor(&ws.matrix)?;
                stats.factorizations += 1;
            } else {
                match self.backend.refactor(&ws.matrix) {
                    Ok(()) => {
                        // A frozen-pivot pass is still a numeric
                        // factorization: counted in both totals.
                        stats.factorizations += 1;
                        stats.refactorizations += 1;
                    }
                    Err(SparseError::PivotDegraded { .. }) => {
                        // Frozen pivot order went bad: re-pivot from scratch.
                        self.backend.factor(&ws.matrix)?;
                        stats.factorizations += 1;
                    }
                    Err(e) => return Err(e.into()),
                }
            }
            self.backend.solve(&ws.rhs, &mut self.x_new, &mut self.scratch)?;
            stats.solves += 1;
            // Backward-error verification.
            ws.matrix.residual_into(&self.x_new, &ws.rhs, &mut self.resid)?;
            let scale = ws.matrix.norm_inf() * wavepipe_sparse::vector::norm_inf(&self.x_new)
                + wavepipe_sparse::vector::norm_inf(&ws.rhs);
            let r = wavepipe_sparse::vector::norm_inf(&self.resid);
            if r.is_finite() && r <= 1e-8 * scale.max(f64::MIN_POSITIVE) {
                self.key = Some(key);
                let mut dxn = 0.0f64;
                for (&xn, &xi) in self.x_new.iter().zip(x) {
                    dxn = dxn.max((xn - xi).abs());
                }
                self.last_dx = dxn.is_finite().then_some(dxn);
                return Ok(true);
            }
            if fresh {
                // Even full pivoting cannot solve this system reliably.
                self.key = None;
                return Ok(false);
            }
            // Fall through: retry with a fresh factorization.
        }
        self.key = None;
        Ok(false)
    }
}

/// Outcome of a Newton solve.
#[derive(Debug, Clone)]
pub struct NewtonOutcome {
    /// The converged (or last) iterate.
    pub x: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Whether the per-unknown delta test passed.
    pub converged: bool,
}

/// Runs Newton–Raphson from initial guess `x0`.
///
/// Each iteration stamps the linearised system at the current iterate,
/// (re)factors, and solves for the next iterate; convergence is the classic
/// SPICE per-unknown delta test (`vntol`/`reltol` on node voltages,
/// `abstol`/`reltol` on branch currents).
///
/// With `exec: Some(..)` the stamp runs on the executor's worker set
/// (colored parallel device evaluation); the executor must have been built
/// for the same `sys`. Results are bit-identical either way.
///
/// # Errors
///
/// Returns [`crate::EngineError::Linear`] if the matrix is singular beyond repair.
/// Non-convergence is reported in the outcome, not as an error, so callers
/// can retry with continuation or a smaller step.
#[allow(clippy::too_many_arguments)] // analysis context is deliberately explicit
pub fn newton_solve(
    sys: &MnaSystem,
    ws: &mut MnaWorkspace,
    cache: &mut LinearCache,
    mut exec: Option<&mut StampExecutor>,
    input: &StampInput<'_>,
    x0: &[f64],
    max_iters: usize,
    opts: &SimOptions,
    stats: &mut SimStats,
) -> Result<NewtonOutcome> {
    if let Some(e) = exec.as_deref() {
        debug_assert!(
            std::ptr::eq::<MnaSystem>(&**e.system(), sys),
            "stamp executor built for a different system"
        );
    }
    let n_nodes = sys.n_nodes();
    let ctl = opts.cache_ctl();
    cache.begin_solve();
    let mut x = x0.to_vec();
    for it in 1..=max_iters {
        // Cooperative budget check once per iteration: a runaway solve stops
        // within one stamp+factor of the deadline instead of at `max_iters`.
        opts.check_budget(input.time)?;
        stats.newton_iterations += 1;
        opts.probe.emit(input.time, EventKind::NewtonIter { iteration: it as u32 });
        opts.metrics.inc(Counter::NewtonIterations);
        let sres = match exec.as_deref_mut() {
            Some(e) => e.stamp(ws, input, &x, &ctl, &opts.probe, &opts.metrics, stats),
            None => {
                let t0 = Instant::now();
                let res = sys.stamp_with(ws, input, &x, &ctl);
                let ns = t0.elapsed().as_nanos();
                stats.stamp_ns += ns;
                stats.stamp_modeled_ns += ns;
                res
            }
        };
        stats.device_evals += sres.evals;
        stats.bypass_hits += sres.bypassed;
        if sres.bypassed > 0 {
            opts.probe
                .emit(input.time, EventKind::BypassedDevices { devices: sres.bypassed as u32 });
        }
        if sres.companion_hit {
            stats.companion_hits += 1;
            opts.probe.emit(input.time, EventKind::CompanionHit);
        }
        if opts.metrics.enabled() {
            publish_stamp_metrics(sys, ws, opts, &sres);
        }
        if !wavepipe_sparse::vector::all_finite(&ws.rhs) {
            // Companion history produced a non-finite excitation: give up on
            // this point so the step controller backs off.
            return Ok(NewtonOutcome { x, iterations: it, converged: false });
        }
        let pre_factor = stats.factorizations;
        let pre_refactor = stats.refactorizations;
        let pre_reuse = stats.jacobian_reuses;
        let solved = cache.factor_and_solve(ws, input, &x, opts, stats)?;
        // factor_and_solve may chord-reuse, factor, refactor, or fall back
        // from one to the other; mirror the counter deltas into the event
        // stream.
        for _ in pre_factor..stats.factorizations {
            opts.probe.emit(input.time, EventKind::Factorization);
        }
        for _ in pre_refactor..stats.refactorizations {
            opts.probe.emit(input.time, EventKind::Refactorization);
        }
        for _ in pre_reuse..stats.jacobian_reuses {
            opts.probe.emit(input.time, EventKind::JacobianReuse);
        }
        if opts.metrics.enabled() {
            publish_linear_metrics(
                opts,
                (stats.factorizations - pre_factor) as u64,
                (stats.refactorizations - pre_refactor) as u64,
                (stats.jacobian_reuses - pre_reuse) as u64,
            );
        }
        if !solved {
            // Linear solve could not be verified: back off the step.
            return Ok(NewtonOutcome { x, iterations: it, converged: false });
        }
        let x_new = cache.x_new.as_slice();
        if !wavepipe_sparse::vector::all_finite(x_new) {
            // Blowup: report as non-convergence so the step controller backs off.
            return Ok(NewtonOutcome { x, iterations: it, converged: false });
        }
        // Junction limiting active means the device linearisation point is
        // not the iterate itself: keep iterating regardless of deltas.
        let mut converged = !ws.limited;
        for (k, (&xn, &xo)) in x_new.iter().zip(&x).enumerate() {
            if !converged {
                break;
            }
            let tol = if k < n_nodes {
                opts.vntol + opts.reltol * xn.abs().max(xo.abs())
            } else {
                opts.abstol + opts.reltol * xn.abs().max(xo.abs())
            };
            if (xn - xo).abs() > tol {
                converged = false;
                break;
            }
        }
        x.copy_from_slice(x_new);
        if converged {
            return Ok(NewtonOutcome { x, iterations: it, converged: true });
        }
    }
    Ok(NewtonOutcome { x, iterations: max_iters, converged: false })
}

/// Mirrors one stamp pass into the metrics registry: scalar totals, the
/// per-class breakdown (from the bypass mask the pass computed), and the
/// bypass/companion cache layers. Kept out-of-line and `#[cold]` so the
/// disabled path leaves the Newton loop body small — the registry is only
/// touched when a handle is attached.
#[cold]
#[inline(never)]
fn publish_stamp_metrics(
    sys: &MnaSystem,
    ws: &MnaWorkspace,
    opts: &SimOptions,
    sres: &crate::mna::StampResult,
) {
    opts.metrics.add(Counter::DeviceEvals, sres.evals as u64);
    sys.publish_class_metrics(&ws.caches.mask, &opts.metrics);
    let nl = sys.nonlinear_device_count() as u64;
    if sres.bypassed > 0 {
        opts.metrics.add(Counter::BypassedDevices, sres.bypassed as u64);
        opts.metrics.add_labeled(Family::CacheHits, "bypass", sres.bypassed as u64);
    }
    if nl > sres.bypassed as u64 {
        opts.metrics.add_labeled(Family::CacheMisses, "bypass", nl - sres.bypassed as u64);
    }
    if sres.companion_hit {
        opts.metrics.inc(Counter::CompanionHits);
        opts.metrics.add_labeled(Family::CacheHits, "companion", 1);
    } else {
        opts.metrics.add_labeled(Family::CacheMisses, "companion", 1);
    }
}

/// Mirrors one `factor_and_solve` call's counter deltas (factorizations,
/// refactorizations, chord reuses) into the registry's scalar counters and
/// the `chord` cache layer. `#[cold]`/out-of-line for the same reason as
/// [`publish_stamp_metrics`].
#[cold]
#[inline(never)]
fn publish_linear_metrics(opts: &SimOptions, factored: u64, refactored: u64, reused: u64) {
    opts.metrics.add(Counter::Factorizations, factored);
    opts.metrics.add(Counter::Refactorizations, refactored);
    if reused > 0 {
        opts.metrics.add(Counter::JacobianReuses, reused);
        opts.metrics.add_labeled(Family::CacheHits, "chord", reused);
    }
    if factored > 0 {
        opts.metrics.add_labeled(Family::CacheMisses, "chord", factored);
    }
}

/// Mirrors one Krylov-path solve's counter deltas (GMRES iterations,
/// preconditioner refreshes, direct fallbacks) into the registry.
/// `#[cold]`/out-of-line for the same reason as [`publish_stamp_metrics`].
#[cold]
#[inline(never)]
fn publish_krylov_metrics(opts: &SimOptions, iters: u64, refreshes: u64, fallbacks: u64) {
    opts.metrics.add(Counter::KrylovIterations, iters);
    opts.metrics.add(Counter::PrecondRefreshes, refreshes);
    opts.metrics.add(Counter::SolverFallbacks, fallbacks);
}

#[cfg(test)]
mod tests {
    use super::*;
    use wavepipe_circuit::{Circuit, DiodeModel, Waveform};

    fn dc_input<'a>(zeros: &'a [f64], caps: &'a [f64], opts: &SimOptions) -> StampInput<'a> {
        StampInput {
            time: 0.0,
            coeffs: None,
            x_prev: zeros,
            x_prev2: zeros,
            cap_currents: caps,
            gmin: opts.gmin,
            gshunt: 0.0,
            source_scale: 1.0,
            ic_mode: false,
        }
    }

    fn divider_circuit() -> Circuit {
        let mut ckt = Circuit::new("lin");
        let a = ckt.node("a");
        ckt.add_vsource("V1", a, Circuit::GROUND, Waveform::dc(5.0)).unwrap();
        let b = ckt.node("b");
        ckt.add_resistor("R1", a, b, 1e3).unwrap();
        ckt.add_resistor("R2", b, Circuit::GROUND, 4e3).unwrap();
        ckt
    }

    fn solve_divider(opts: &SimOptions) -> (NewtonOutcome, SimStats) {
        let sys = MnaSystem::compile(&divider_circuit()).unwrap();
        let mut ws = sys.new_workspace();
        let mut cache = LinearCache::for_options(opts);
        let mut stats = SimStats::new();
        let zeros = vec![0.0; sys.n_unknowns()];
        let caps = vec![0.0; sys.cap_state_count()];
        let out = newton_solve(
            &sys,
            &mut ws,
            &mut cache,
            None,
            &dc_input(&zeros, &caps, opts),
            &zeros,
            20,
            opts,
            &mut stats,
        )
        .unwrap();
        assert!(out.converged);
        assert!(out.iterations <= 2, "linear should converge immediately, took {}", out.iterations);
        let b_idx = sys.node_unknown("b").unwrap();
        assert!((out.x[b_idx] - 4.0).abs() < 1e-9);
        (out, stats)
    }

    #[test]
    fn linear_circuit_counts_one_fresh_pass_plus_frozen_passes_without_chord() {
        // Knobs pinned so the CI caches-off env leg sees identical behaviour.
        let opts = SimOptions::default().with_chord_newton(false).with_bypass(false);
        let (out, stats) = solve_divider(&opts);
        // Every iteration pays a numeric pass; only the first pivots fresh.
        assert_eq!(stats.factorizations, out.iterations);
        assert_eq!(stats.refactorizations, out.iterations - 1);
        assert_eq!(stats.jacobian_reuses, 0);
    }

    #[test]
    fn linear_circuit_chord_reuses_the_first_factorization() {
        let opts = SimOptions::default().with_chord_newton(true).with_bypass(false);
        let (out, stats) = solve_divider(&opts);
        // One fresh factorization; every later iteration is a chord step.
        assert_eq!(stats.factorizations, 1);
        assert_eq!(stats.refactorizations, 0);
        assert_eq!(stats.jacobian_reuses, out.iterations - 1);
    }

    #[test]
    fn diode_resistor_converges_to_forward_drop() {
        // 5V -> 1k -> diode to ground: v_diode ~ 0.6-0.75 V.
        let mut ckt = Circuit::new("dio");
        let a = ckt.node("a");
        let d = ckt.node("d");
        ckt.add_vsource("V1", a, Circuit::GROUND, Waveform::dc(5.0)).unwrap();
        ckt.add_resistor("R1", a, d, 1e3).unwrap();
        ckt.add_diode("D1", d, Circuit::GROUND, DiodeModel::default()).unwrap();
        let sys = MnaSystem::compile(&ckt).unwrap();
        let mut ws = sys.new_workspace();
        // Chord/bypass pinned off: the KCL check below is tighter than the
        // `reltol` the chord iteration converges to.
        let opts = SimOptions::default().with_chord_newton(false).with_bypass(false);
        let mut cache = LinearCache::for_options(&opts);
        let mut stats = SimStats::new();
        let zeros = vec![0.0; sys.n_unknowns()];
        let caps = vec![0.0; sys.cap_state_count()];
        let out = newton_solve(
            &sys,
            &mut ws,
            &mut cache,
            None,
            &dc_input(&zeros, &caps, &opts),
            &zeros,
            100,
            &opts,
            &mut stats,
        )
        .unwrap();
        assert!(out.converged, "diode NR should converge");
        let vd = out.x[sys.node_unknown("d").unwrap()];
        assert!(vd > 0.55 && vd < 0.8, "v_diode = {vd}");
        // KCL: current through R equals diode current.
        let ir = (5.0 - vd) / 1e3;
        let (id, _) = crate::devices::diode_eval(vd, 1e-14, crate::devices::VT);
        assert!((ir - id).abs() / ir < 1e-3, "ir {ir} vs id {id}");
    }

    #[test]
    fn nonconvergence_reported_not_error() {
        // A diode circuit given 1 iteration cannot converge from zero.
        let mut ckt = Circuit::new("dio");
        let a = ckt.node("a");
        let d = ckt.node("d");
        ckt.add_vsource("V1", a, Circuit::GROUND, Waveform::dc(5.0)).unwrap();
        ckt.add_resistor("R1", a, d, 1e3).unwrap();
        ckt.add_diode("D1", d, Circuit::GROUND, DiodeModel::default()).unwrap();
        let sys = MnaSystem::compile(&ckt).unwrap();
        let mut ws = sys.new_workspace();
        let opts = SimOptions::default();
        let mut cache = LinearCache::for_options(&opts);
        let mut stats = SimStats::new();
        let zeros = vec![0.0; sys.n_unknowns()];
        let caps = vec![0.0; sys.cap_state_count()];
        let out = newton_solve(
            &sys,
            &mut ws,
            &mut cache,
            None,
            &dc_input(&zeros, &caps, &opts),
            &zeros,
            1,
            &opts,
            &mut stats,
        )
        .unwrap();
        assert!(!out.converged);
    }
}
