//! Cooperative cancellation and wall-clock deadlines.
//!
//! A [`CancelToken`] is a cheap shared flag checked at natural preemption
//! points — round boundaries in the WavePipe driver, step boundaries in the
//! serial loop, and every Newton iteration — so a runaway solve stops within
//! one iteration of the budget expiring instead of running to `tstop`. The
//! token is *cooperative*: nothing is interrupted mid-factorization, which
//! keeps every accepted point bit-identical to an unbudgeted run.
//!
//! The deadline is armed by the analysis entry point (after the DC operating
//! point, so even a zero budget yields the `t = 0` solution) rather than at
//! token construction: an options struct can be built long before the run it
//! configures starts.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    /// Armed deadline instant, if a wall-clock budget is active.
    deadline: Mutex<Option<Instant>>,
}

/// Shared, clonable cancellation handle.
///
/// All clones observe the same state; `clone` is an `Arc` bump. Equality is
/// identity (two tokens are equal iff they share state), mirroring
/// [`wavepipe_telemetry::ProbeHandle`].
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

impl CancelToken {
    /// Creates a fresh, un-cancelled token with no deadline armed.
    pub fn new() -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: Mutex::new(None),
            }),
        }
    }

    /// Requests cancellation. Idempotent; visible to all clones.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// True once [`CancelToken::cancel`] has been called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Acquire)
    }

    /// Arms (or re-arms) a wall-clock deadline `budget` from now. Called by
    /// the analysis entry points; re-armable so one token can budget several
    /// consecutive runs.
    pub fn arm_deadline(&self, budget: Duration) {
        let at = Instant::now().checked_add(budget);
        *self.inner.deadline.lock().expect("cancel token lock") = at;
    }

    /// Disarms any active deadline (cancellation state is untouched).
    pub fn disarm_deadline(&self) {
        *self.inner.deadline.lock().expect("cancel token lock") = None;
    }

    /// True when a deadline is armed and has passed.
    pub fn deadline_expired(&self) -> bool {
        match *self.inner.deadline.lock().expect("cancel token lock") {
            Some(at) => Instant::now() >= at,
            None => false,
        }
    }
}

impl PartialEq for CancelToken {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_inert() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert!(!t.deadline_expired());
    }

    #[test]
    fn cancel_is_visible_to_clones() {
        let t = CancelToken::new();
        let c = t.clone();
        t.cancel();
        assert!(c.is_cancelled());
    }

    #[test]
    fn zero_deadline_expires_immediately() {
        let t = CancelToken::new();
        t.arm_deadline(Duration::ZERO);
        assert!(t.deadline_expired());
        t.disarm_deadline();
        assert!(!t.deadline_expired());
    }

    #[test]
    fn long_deadline_does_not_expire() {
        let t = CancelToken::new();
        t.arm_deadline(Duration::from_secs(3600));
        assert!(!t.deadline_expired());
    }

    #[test]
    fn equality_is_identity() {
        let a = CancelToken::new();
        let b = CancelToken::new();
        assert_ne!(a, b);
        assert_eq!(a, a.clone());
    }
}
