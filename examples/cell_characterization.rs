//! Digital cell characterisation: define an inverter once as a `.subckt`,
//! instantiate a chain, measure propagation delays and edge rates the way a
//! liberty-style characterisation flow would, and export the waveforms as a
//! SPICE rawfile.
//!
//! Run with: `cargo run --release --example cell_characterization`

use wavepipe::circuit::parse_netlist;
use wavepipe::core::{run_wavepipe, Scheme, WavePipeOptions};
use wavepipe::engine::{measure, rawfile};

const DECK: &str = "\
inverter cell characterisation
* One cell definition, used five times.
.subckt INV in out vdd
Mp out in vdd PCELL
Mn out in 0 NCELL
.ends
.model PCELL PMOS (VTO=-0.7 KP=60u W=30u L=1u CGS=4f CGD=4f)
.model NCELL NMOS (VTO=0.7 KP=120u W=15u L=1u CGS=4f CGD=4f)

Vdd vdd 0 3.3
Vin n0 0 PULSE(0 3.3 1n 0.15n 0.15n 8n 18n)
X1 n0 n1 vdd INV
C1 n1 0 15f
X2 n1 n2 vdd INV
C2 n2 0 15f
X3 n2 n3 vdd INV
C3 n3 0 15f
X4 n3 n4 vdd INV
C4 n4 0 15f
X5 n4 n5 vdd INV
C5 n5 0 15f
.tran 0.02n 40n
.end
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let parsed = parse_netlist(DECK)?;
    parsed.circuit.validate()?;
    let tran = parsed.tran.expect("deck has .tran");
    println!("circuit: {}", parsed.circuit.summary());

    let opts = WavePipeOptions::new(Scheme::Backward, 2);
    let report = run_wavepipe(&parsed.circuit, tran.tstep, tran.tstop, &opts)?;
    let res = &report.result;
    println!("run    : {}\n", report.summary());

    let vdd = 3.3;
    let vmid = vdd / 2.0;
    let trace =
        |n: &str| res.trace(res.unknown_of(n).unwrap_or_else(|| panic!("node {n} missing")));

    // Per-stage propagation delays (alternating edge polarity through the
    // inverters).
    println!("stage   tpd (ps)   edge");
    let mut total = 0.0;
    for i in 0..5 {
        let from = format!("n{i}");
        let to = format!("n{}", i + 1);
        let (fe, te) = if i % 2 == 0 {
            (measure::Edge::Rising, measure::Edge::Falling)
        } else {
            (measure::Edge::Falling, measure::Edge::Rising)
        };
        let d =
            measure::delay(&trace(&from), vmid, fe, &trace(&to), vmid, te, 0).expect("stage delay");
        total += d;
        println!("{}->{}   {:8.2}   {:?}", from, to, d * 1e12, te);
    }
    println!("chain   {:8.2}   (sum)", total * 1e12);

    // Output edge rates at the last stage.
    let out = trace("n5");
    if let Some(rt) = measure::rise_time(&out, 0.0, vdd, 0) {
        println!("\nn5 rise time (10-90%): {:.2} ps", rt * 1e12);
    }
    if let Some(ft) = measure::fall_time(&out, 0.0, vdd, 0) {
        println!("n5 fall time (90-10%): {:.2} ps", ft * 1e12);
    }

    // Supply current drawn during switching (average over the first cycle).
    if let Some(ivdd) = res.branch_of("Vdd") {
        let idd = res.trace(ivdd);
        let avg = measure::average(&idd, 0.0, 18e-9).expect("window inside run");
        println!("average VDD current over one cycle: {:.2} uA", -avg * 1e6);
    }

    // Rawfile export for external waveform viewers.
    let mut raw = Vec::new();
    rawfile::write_transient(res, "inverter cell characterisation", &mut raw)?;
    std::fs::write("cell_characterization.raw", &raw)?;
    println!("\nwrote cell_characterization.raw ({} bytes)", raw.len());
    std::fs::remove_file("cell_characterization.raw").ok();
    Ok(())
}
