//! Simulation options shared by DC and transient analysis.

use crate::integrate::Method;
use wavepipe_telemetry::ProbeHandle;

/// Tolerances and control knobs for the simulation engine.
///
/// The defaults mirror classic SPICE3 values; every WavePipe scheme uses the
/// *same* options object as the serial reference, which is what makes the
/// accuracy-equivalence property meaningful.
#[derive(Debug, Clone, PartialEq)]
pub struct SimOptions {
    /// Relative convergence/LTE tolerance (`RELTOL`). Default `1e-3`.
    pub reltol: f64,
    /// Absolute voltage tolerance (`VNTOL`), volts. Default `1e-6`.
    pub vntol: f64,
    /// Absolute current tolerance (`ABSTOL`), amperes. Default `1e-12`.
    pub abstol: f64,
    /// Minimum conductance added across nonlinear junctions (`GMIN`).
    /// Default `1e-12`.
    pub gmin: f64,
    /// Maximum Newton iterations per transient point (`ITL4`). Default `40`.
    pub max_newton_iters: usize,
    /// Maximum Newton iterations for the DC operating point (`ITL1`).
    /// Default `200`.
    pub max_dc_iters: usize,
    /// Integration method for transient analysis. Default [`Method::Trapezoidal`].
    pub method: Method,
    /// LTE overestimation safety divisor (`TRTOL`). Default `7.0`.
    pub trtol: f64,
    /// Maximum step-growth ratio between consecutive accepted steps.
    /// Default `2.0`. (This is the ratio WavePipe's backward pipelining
    /// compounds across threads.)
    pub rmax: f64,
    /// Step shrink factor on Newton non-convergence. Default `1/8`.
    pub nr_shrink: f64,
    /// Minimum step as a fraction of `tstop`. Default `1e-10`.
    pub hmin_frac: f64,
    /// Maximum step as a fraction of `tstop`. Default `1/50`.
    pub hmax_frac: f64,
    /// Charge/flux absolute LTE floor, used in the weighted LTE norm.
    /// Default `1e-6`.
    pub lte_abstol: f64,
    /// Start transient analysis from element initial conditions (`UIC`)
    /// instead of the DC operating point: capacitors with `IC=` are forced
    /// to their initial voltage, capacitors without start discharged,
    /// inductors start at their initial current (default 0). Default
    /// `false` (compute the operating point).
    pub use_ic: bool,
    /// Telemetry sink. The default ([`ProbeHandle::none`]) makes every
    /// emission a single branch; attach a recording probe to capture the
    /// event stream. Probes only observe — they never alter the solution.
    pub probe: ProbeHandle,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            reltol: 1e-3,
            vntol: 1e-6,
            abstol: 1e-12,
            gmin: 1e-12,
            max_newton_iters: 40,
            max_dc_iters: 200,
            method: Method::Trapezoidal,
            trtol: 7.0,
            rmax: 2.0,
            nr_shrink: 0.125,
            hmin_frac: 1e-10,
            hmax_frac: 0.02,
            lte_abstol: 1e-6,
            use_ic: false,
            probe: ProbeHandle::none(),
        }
    }
}

impl SimOptions {
    /// Options with a specific integration method.
    pub fn with_method(method: Method) -> Self {
        SimOptions { method, ..SimOptions::default() }
    }

    /// Minimum step for a run to `tstop`.
    pub fn hmin(&self, tstop: f64) -> f64 {
        self.hmin_frac * tstop
    }

    /// Maximum step for a run to `tstop`.
    pub fn hmax(&self, tstop: f64) -> f64 {
        self.hmax_frac * tstop
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_spice_like() {
        let o = SimOptions::default();
        assert_eq!(o.reltol, 1e-3);
        assert_eq!(o.vntol, 1e-6);
        assert_eq!(o.abstol, 1e-12);
        assert_eq!(o.method, Method::Trapezoidal);
        assert!(o.rmax >= 1.5);
    }

    #[test]
    fn hmin_hmax_scale_with_tstop() {
        let o = SimOptions::default();
        assert!(o.hmin(1e-6) < o.hmax(1e-6));
        assert_eq!(o.hmax(1.0), o.hmax_frac);
    }

    #[test]
    fn with_method_overrides_only_method() {
        let o = SimOptions::with_method(Method::Gear2);
        assert_eq!(o.method, Method::Gear2);
        assert_eq!(o.reltol, SimOptions::default().reltol);
    }
}
