//! Prints the figure data of the WavePipe evaluation (accuracy, step-size
//! profiles, thread scaling, and the scheduling ablations).
//!
//! Usage: `cargo run --release -p wavepipe-bench --bin figures [-- --small]`

use wavepipe_bench::{
    fig_accuracy, fig_bp_ablation, fig_fp_ablation, fig_scaling, fig_step_profile, suite, Scale,
};
use wavepipe_circuit::generators;

fn main() {
    let scale = if std::env::args().any(|a| a == "--small") { Scale::Small } else { Scale::Full };
    println!("{}", fig_accuracy(scale));

    // Figure B on the two circuits whose step profiles differ the most.
    let all = suite(scale);
    for name_fragment in ["ring_oscillator", "power_grid"] {
        if let Some(b) = all.iter().find(|b| b.name.contains(name_fragment)) {
            println!("{}", fig_step_profile(b));
        }
    }

    // Figure C on a mixed and a digital workload.
    for name_fragment in ["power_grid", "inverter_chain"] {
        if let Some(b) = all.iter().find(|b| b.name.contains(name_fragment)) {
            let (txt, _) = fig_scaling(b);
            println!("{txt}");
        }
    }

    // Figure D ablations.
    println!("{}", fig_fp_ablation(&generators::amp_chain(2)));
    println!("{}", fig_bp_ablation(&generators::power_grid(6, 6)));
}
