//! Variable-step transient analysis.
//!
//! The module is split the way WavePipe needs it:
//!
//! * [`HistoryWindow`] — the few most recent accepted points plus capacitor
//!   state: everything required to solve the *next* point. Cloneable, so
//!   concurrent WavePipe tasks can each take a consistent snapshot.
//! * [`PointSolver`] — solves one time point from a history window
//!   (companion stamping + Newton). Cloneable: one per thread.
//! * [`run_transient`] — the serial reference loop: breakpoint handling,
//!   LTE accept/reject, step-size control. WavePipe reuses all the same
//!   pieces, so its accepted points satisfy identical accuracy tests.

use crate::dcop::dc_operating_point;
use crate::error::{EngineError, Result};
use crate::fault::FaultKind;
use crate::integrate::{IntegCoeffs, Method};
use crate::lte::lte_step_control;
use crate::mna::{MnaSystem, MnaWorkspace, StampInput};
use crate::newton::{newton_solve, LinearCache};
use crate::options::SimOptions;
use crate::parstamp::StampExecutor;
use crate::result::TransientResult;
use crate::stats::SimStats;
use std::sync::Arc;
use std::time::Instant;
use wavepipe_circuit::Circuit;
use wavepipe_telemetry::{Counter, EventKind, Family, Gauge, Series};

/// Number of past points retained for companions, prediction, and LTE.
const WINDOW: usize = 4;

/// Coefficients for updating capacitor-current *state* at an accepted point.
///
/// The natural trapezoidal state recursion `i_n = 2C/h (u_n - u_(n-1)) -
/// i_(n-1)` is unstable to solver noise (the alternating term compounds), so
/// states are instead estimated by a variable-step BDF2 divided-difference
/// derivative of the node voltages — O(h^2) accurate, hence consistent with
/// every second-order companion, and free of recursion.
pub(crate) fn state_coeffs(hw: &HistoryWindow, t_new: f64) -> IntegCoeffs {
    let h = t_new - hw.times[0];
    if hw.times.len() >= 2 && hw.points_since_restart >= 1 {
        let h_prev = hw.times[0] - hw.times[1];
        IntegCoeffs::new(Method::Gear2, h, h_prev)
    } else {
        IntegCoeffs::new(Method::BackwardEuler, h, h)
    }
}

/// The recent accepted-solution window: the complete state needed to take
/// the next step.
#[derive(Debug, Clone)]
pub struct HistoryWindow {
    /// Accepted times, newest first (at most [`WINDOW`]).
    times: Vec<f64>,
    /// Solutions parallel to `times`.
    xs: Vec<Vec<f64>>,
    /// Capacitor currents at `times[0]`.
    cap_currents: Vec<f64>,
    /// Accepted points since the last discontinuity (integration restart).
    points_since_restart: usize,
}

impl HistoryWindow {
    /// Starts a history at `t = 0` from the DC operating point.
    pub fn start(x0: Vec<f64>, n_cap_states: usize) -> Self {
        HistoryWindow {
            times: vec![0.0],
            xs: vec![x0],
            cap_currents: vec![0.0; n_cap_states],
            points_since_restart: 0,
        }
    }

    /// Current (latest accepted) time.
    pub fn t(&self) -> f64 {
        self.times[0]
    }

    /// Latest accepted solution.
    pub fn x(&self) -> &[f64] {
        &self.xs[0]
    }

    /// Times, newest first.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Solutions, newest first.
    pub fn solutions(&self) -> &[Vec<f64>] {
        &self.xs
    }

    /// Capacitor currents at the latest point.
    pub fn cap_currents(&self) -> &[f64] {
        &self.cap_currents
    }

    /// Accepted points since the last integration restart.
    pub fn points_since_restart(&self) -> usize {
        self.points_since_restart
    }

    /// The previous accepted step size, if two points exist.
    pub fn h_prev(&self) -> Option<f64> {
        (self.times.len() >= 2).then(|| self.times[0] - self.times[1])
    }

    /// Marks an integration restart (source slope discontinuity): the next
    /// step will use backward Euler and LTE restarts its window.
    pub fn mark_discontinuity(&mut self) {
        self.points_since_restart = 0;
    }

    /// The method actually usable for the next step, given the requested one
    /// and the available smooth history.
    pub fn effective_method(&self, requested: Method) -> Method {
        match requested {
            Method::BackwardEuler => Method::BackwardEuler,
            Method::Trapezoidal => {
                if self.points_since_restart < 1 {
                    Method::BackwardEuler
                } else {
                    Method::Trapezoidal
                }
            }
            Method::Gear2 => {
                if self.points_since_restart < 2 || self.times.len() < 2 {
                    Method::BackwardEuler
                } else {
                    Method::Gear2
                }
            }
        }
    }

    /// Polynomial (linear) prediction of the solution at `t_new`, used as the
    /// Newton initial guess — and by WavePipe's forward pipelining as the
    /// speculative history value.
    pub fn predict(&self, t_new: f64) -> Vec<f64> {
        if self.times.len() < 2 || self.points_since_restart == 0 {
            return self.xs[0].clone();
        }
        if self.times.len() >= 3 && self.points_since_restart >= 2 {
            // Quadratic Lagrange extrapolation through the last three points
            // (matches the second-order integration methods).
            let (t0, t1, t2) = (self.times[0], self.times[1], self.times[2]);
            let l0 = (t_new - t1) * (t_new - t2) / ((t0 - t1) * (t0 - t2));
            let l1 = (t_new - t0) * (t_new - t2) / ((t1 - t0) * (t1 - t2));
            let l2 = (t_new - t0) * (t_new - t1) / ((t2 - t0) * (t2 - t1));
            return self.xs[0]
                .iter()
                .zip(&self.xs[1])
                .zip(&self.xs[2])
                .map(|((&x0, &x1), &x2)| l0 * x0 + l1 * x1 + l2 * x2)
                .collect();
        }
        let dt = self.times[0] - self.times[1];
        let scale = (t_new - self.times[0]) / dt;
        self.xs[0].iter().zip(&self.xs[1]).map(|(&x0, &x1)| x0 + (x0 - x1) * scale).collect()
    }

    /// Accepts a solved point, rolling the window forward. The capacitor
    /// currents were computed by [`PointSolver::solve_point`] against the
    /// *same history the companion integration used* — important for
    /// WavePipe, where the committing window may already contain trailing
    /// points the solve never saw.
    pub fn accept(&mut self, sol: &PointSolution) {
        self.times.insert(0, sol.t);
        self.xs.insert(0, sol.x.clone());
        self.times.truncate(WINDOW);
        self.xs.truncate(WINDOW);
        self.cap_currents = sol.cap_currents.clone();
        self.points_since_restart += 1;
    }

    /// Number of history points usable for LTE (within the smooth region).
    pub fn usable_for_lte(&self) -> usize {
        (self.points_since_restart + 1).min(self.times.len())
    }

    /// Returns a copy of this window advanced by a *hypothetical* point —
    /// WavePipe's forward pipelining speculates on the next solution and
    /// builds the pipelined task's history from the prediction.
    ///
    /// Capacitor currents are updated through the same state-derivative
    /// formula an actual accept would use, so the speculative window is
    /// internally consistent.
    pub fn speculate(&self, sys: &MnaSystem, t_new: f64, x_new: Vec<f64>) -> HistoryWindow {
        let mut next = self.clone();
        let coeffs = state_coeffs(self, t_new);
        let x_prev2 = if self.xs.len() >= 2 { &self.xs[1] } else { &self.xs[0] };
        let caps =
            sys.cap_currents_after(&coeffs, &x_new, &self.xs[0], x_prev2, &self.cap_currents);
        next.times.insert(0, t_new);
        next.xs.insert(0, x_new);
        next.times.truncate(WINDOW);
        next.xs.truncate(WINDOW);
        next.cap_currents = caps;
        next.points_since_restart += 1;
        next
    }
}

/// A solved candidate time point.
#[derive(Debug, Clone)]
pub struct PointSolution {
    /// The time of the point.
    pub t: f64,
    /// The converged solution.
    pub x: Vec<f64>,
    /// Method actually used.
    pub method: Method,
    /// Discretisation coefficients used (needed to update capacitor state).
    pub coeffs: IntegCoeffs,
    /// Whether Newton converged.
    pub converged: bool,
    /// Newton iterations spent.
    pub iterations: usize,
    /// Capacitor currents at this point, computed against the history the
    /// companion integration actually used (empty if Newton failed).
    pub cap_currents: Vec<f64>,
    /// Work performed for this point alone.
    pub stats: SimStats,
}

/// Solves individual time points against a history window.
///
/// Owns the per-thread mutable state (matrix values, RHS, LU factors), while
/// the compiled [`MnaSystem`] is shared. Clone one per WavePipe thread.
///
/// With [`SimOptions::stamp_workers`] `>= 1` each solver also owns a
/// [`StampExecutor`] — a private worker set evaluating devices in parallel
/// during every stamp, with bit-identical results to the serial path.
#[derive(Debug)]
pub struct PointSolver {
    pub(crate) sys: Arc<MnaSystem>,
    pub(crate) opts: SimOptions,
    pub(crate) ws: MnaWorkspace,
    pub(crate) cache: LinearCache,
    pub(crate) exec: Option<StampExecutor>,
    /// Monotone per-solver solve counter — together with the fault handle's
    /// lane tag, the deterministic coordinate fault injection keys on.
    solve_seq: u64,
}

impl Clone for PointSolver {
    fn clone(&self) -> Self {
        // Worker threads are not shareable state: each clone gets its own
        // executor so WavePipe lanes never contend on one worker set.
        PointSolver {
            sys: Arc::clone(&self.sys),
            opts: self.opts.clone(),
            ws: self.ws.clone(),
            cache: self.cache.clone(),
            exec: self
                .exec
                .as_ref()
                .and_then(|e| StampExecutor::new(&self.sys, e.workers(), &self.opts.faults)),
            solve_seq: self.solve_seq,
        }
    }
}

impl PointSolver {
    /// Creates a solver for a compiled system.
    pub fn new(sys: Arc<MnaSystem>, opts: SimOptions) -> Self {
        let ws = sys.new_workspace();
        let exec = if opts.stamp_workers >= 1 {
            StampExecutor::new(&sys, opts.stamp_workers, &opts.faults)
        } else {
            None
        };
        let cache = LinearCache::for_options(&opts);
        PointSolver { sys, opts, ws, cache, exec, solve_seq: 0 }
    }

    /// The compiled system.
    pub fn system(&self) -> &MnaSystem {
        &self.sys
    }

    /// The options in effect.
    pub fn options(&self) -> &SimOptions {
        &self.opts
    }

    /// Computes the DC operating point (the `t = 0` state).
    ///
    /// # Errors
    ///
    /// See [`dc_operating_point`].
    pub fn dc_op(&mut self, stats: &mut SimStats) -> Result<Vec<f64>> {
        dc_operating_point(
            &self.sys,
            &mut self.ws,
            &mut self.cache,
            self.exec.as_mut(),
            &self.opts,
            stats,
        )
    }

    /// Computes the transient starting state: the DC operating point, or —
    /// when [`SimOptions::use_ic`] is set — a `UIC` solve that forces
    /// capacitors to their declared initial voltages (discharged when
    /// unspecified) and inductors to their initial currents.
    ///
    /// # Errors
    ///
    /// Propagates operating-point / Newton failures.
    pub fn initial_state(&mut self, stats: &mut SimStats) -> Result<Vec<f64>> {
        if !self.opts.use_ic {
            return self.dc_op(stats);
        }
        let n = self.sys.n_unknowns();
        let zeros = vec![0.0; n];
        let caps = vec![0.0; self.sys.cap_state_count()];
        let input = StampInput {
            time: 0.0,
            coeffs: None,
            x_prev: &zeros,
            x_prev2: &zeros,
            cap_currents: &caps,
            gmin: self.opts.gmin,
            gshunt: self.opts.gmin,
            source_scale: 1.0,
            ic_mode: true,
        };
        let out = newton_solve(
            &self.sys,
            &mut self.ws,
            &mut self.cache,
            self.exec.as_mut(),
            &input,
            &zeros,
            self.opts.max_dc_iters,
            &self.opts,
            stats,
        )?;
        if !out.converged {
            return Err(crate::error::EngineError::NoConvergence {
                time: 0.0,
                iterations: out.iterations,
                report: Box::new(crate::recovery::residual_report(&self.sys, &self.ws, &out.x)),
            });
        }
        // The IC stamp pattern differs numerically from the transient one;
        // drop the pivot order so the first real step re-factors cleanly.
        self.cache.invalidate();
        Ok(out.x)
    }

    /// Dismantles the solver into the workspace and linear cache a lane of
    /// the packed batch tier continues from after the DC solve (see
    /// [`crate::lane`]).
    pub(crate) fn into_lane_parts(self) -> (MnaWorkspace, LinearCache) {
        (self.ws, self.cache)
    }

    /// Solves the circuit at `t_new` from the history window `hw`.
    ///
    /// `x_guess` overrides the default predictor as the Newton start;
    /// `history_override` substitutes the previous-point solution (WavePipe
    /// forward pipelining passes the *predicted* previous point here).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Linear`] only for unrecoverable matrix
    /// failures; Newton non-convergence is reported via
    /// [`PointSolution::converged`].
    pub fn solve_point(
        &mut self,
        hw: &HistoryWindow,
        t_new: f64,
        x_guess: Option<&[f64]>,
        max_iters: usize,
    ) -> Result<PointSolution> {
        let start = Instant::now();
        let t0 = hw.t();
        assert!(t_new > t0, "time must advance: {t_new} <= {t0}");
        let h = t_new - t0;
        self.opts.probe.emit(t_new, EventKind::SolveStart { h });
        let method = hw.effective_method(self.opts.method);
        let h_prev = hw.h_prev().unwrap_or(h);
        let coeffs = IntegCoeffs::new(method, h, h_prev);
        // Deterministic fault injection, keyed on (lane, solve index). An
        // inert handle reduces this to one branch.
        let injected = {
            let seq = self.solve_seq;
            self.solve_seq = self.solve_seq.wrapping_add(1);
            self.opts.faults.solve_fault(seq)
        };
        match injected {
            Some(FaultKind::PanicWorker) => {
                panic!(
                    "injected fault: worker panic on lane {} at solve {}",
                    self.opts.faults.lane(),
                    self.solve_seq - 1
                );
            }
            Some(FaultKind::SlowSolve { millis }) => {
                std::thread::sleep(std::time::Duration::from_millis(millis));
            }
            Some(FaultKind::ForceNonConvergence) => {
                // Report the point as unconverged no matter what Newton would
                // have done, leaving the caches untouched (a genuinely stale
                // cache is exactly what the recovery ladder's rollback rung
                // exists to clear). The step controller shrinks to the floor
                // and then enters the ladder; rescue solves are fault-exempt,
                // so the rescue always lands.
                let mut stats = SimStats::new();
                stats.wall_ns += start.elapsed().as_nanos();
                self.opts.probe.emit(
                    t_new,
                    EventKind::SolveEnd { iterations: max_iters as u32, converged: false },
                );
                self.publish_solve_metrics(max_iters, start);
                return Ok(PointSolution {
                    t: t_new,
                    x: hw.xs[0].clone(),
                    method,
                    coeffs,
                    converged: false,
                    iterations: max_iters,
                    cap_currents: Vec::new(),
                    stats,
                });
            }
            Some(FaultKind::SingularMatrix) => {
                // Behave exactly like a genuinely singular companion matrix
                // (the `EngineError::Linear` branch below): unconverged
                // result, poisoned factorization dropped.
                self.cache.invalidate();
                let mut stats = SimStats::new();
                stats.wall_ns += start.elapsed().as_nanos();
                self.opts.probe.emit(
                    t_new,
                    EventKind::SolveEnd { iterations: max_iters as u32, converged: false },
                );
                self.publish_solve_metrics(max_iters, start);
                return Ok(PointSolution {
                    t: t_new,
                    x: hw.xs[0].clone(),
                    method,
                    coeffs,
                    converged: false,
                    iterations: max_iters,
                    cap_currents: Vec::new(),
                    stats,
                });
            }
            _ => {}
        }
        let x_prev2 = if hw.xs.len() >= 2 { &hw.xs[1] } else { &hw.xs[0] };
        let input = StampInput {
            time: t_new,
            coeffs: Some(coeffs),
            x_prev: &hw.xs[0],
            x_prev2,
            cap_currents: &hw.cap_currents,
            gmin: self.opts.gmin,
            gshunt: 0.0,
            source_scale: 1.0,
            ic_mode: false,
        };
        let guess = match x_guess {
            Some(g) => g.to_vec(),
            None => hw.predict(t_new),
        };
        let mut stats = SimStats::new();
        let outcome = match newton_solve(
            &self.sys,
            &mut self.ws,
            &mut self.cache,
            self.exec.as_mut(),
            &input,
            &guess,
            max_iters,
            &self.opts,
            &mut stats,
        ) {
            Ok(o) => o,
            Err(EngineError::Linear(_)) => {
                // A singular companion matrix at this step size: report as
                // non-convergence so the controller backs off; drop the
                // (possibly poisoned) factorization.
                self.cache.invalidate();
                stats.wall_ns += start.elapsed().as_nanos();
                self.opts.probe.emit(
                    t_new,
                    EventKind::SolveEnd { iterations: max_iters as u32, converged: false },
                );
                self.publish_solve_metrics(max_iters, start);
                return Ok(PointSolution {
                    t: t_new,
                    x: hw.xs[0].clone(),
                    method,
                    coeffs,
                    converged: false,
                    iterations: max_iters,
                    cap_currents: Vec::new(),
                    stats,
                });
            }
            Err(e) => return Err(e),
        };
        let mut outcome = outcome;
        if matches!(injected, Some(FaultKind::NanSolution)) && outcome.converged {
            // The solve itself succeeded; poison the answer so the commit
            // machinery's finiteness test has something real to catch.
            outcome.x.iter_mut().for_each(|v| *v = f64::NAN);
        }
        let cap_currents = if outcome.converged {
            let sc = state_coeffs(hw, t_new);
            self.sys.cap_currents_after(&sc, &outcome.x, &hw.xs[0], x_prev2, &hw.cap_currents)
        } else {
            // The cached LU was computed along an abandoned Newton path:
            // make chord reuse re-qualify through a fresh factorization.
            self.cache.note_rejection();
            Vec::new()
        };
        stats.wall_ns += start.elapsed().as_nanos();
        self.opts.probe.emit(
            t_new,
            EventKind::SolveEnd {
                iterations: outcome.iterations as u32,
                converged: outcome.converged,
            },
        );
        self.publish_solve_metrics(outcome.iterations, start);
        Ok(PointSolution {
            t: t_new,
            x: outcome.x,
            method,
            coeffs,
            converged: outcome.converged,
            iterations: outcome.iterations,
            cap_currents,
            stats,
        })
    }

    /// Mirrors a finished point-solve into the metrics registry: scalar and
    /// per-lane solve counts plus the iteration / wall-time series. The
    /// wall-time series is timing data — anything that promises byte
    /// stability reads only the counts. The body is `#[cold]`/out-of-line so
    /// the disabled path costs one branch without growing the solve path.
    fn publish_solve_metrics(&self, iterations: usize, start: Instant) {
        if self.opts.metrics.enabled() {
            publish_solve_metrics_cold(&self.opts.metrics, iterations, start);
        }
    }
}

/// Out-of-line body of [`PointSolver::publish_solve_metrics`].
#[cold]
#[inline(never)]
fn publish_solve_metrics_cold(
    m: &wavepipe_telemetry::MetricsHandle,
    iterations: usize,
    start: Instant,
) {
    m.inc(Counter::Solves);
    m.add_lane(Family::SolvesByLane, 1);
    m.observe(Series::NewtonItersPerSolve, iterations as f64);
    m.observe(Series::SolveMicros, start.elapsed().as_nanos() as f64 / 1e3);
}

/// Out-of-line publish of one accepted point: scalar and per-lane counts,
/// the step-size series, and the live `current_h` gauge. `#[cold]` so the
/// accept path of the step loop stays small when no registry is attached.
#[cold]
#[inline(never)]
fn publish_accept_metrics(m: &wavepipe_telemetry::MetricsHandle, h_committed: f64, h_next: f64) {
    m.inc(Counter::PointsAccepted);
    m.add_lane(Family::PointsByLane, 1);
    m.observe(Series::StepSize, h_committed);
    m.set_gauge(Gauge::CurrentH, h_next);
}

/// A transient run's result together with the error (if any) that ended it:
/// the fault-tolerant view of an analysis, where a mid-run failure keeps the
/// waveform prefix accepted before it.
#[derive(Debug, Clone)]
pub struct TransientOutcome {
    /// Every point accepted before the run ended (always holds at least the
    /// `t = 0` point).
    pub result: TransientResult,
    /// `None` for a clean run to `tstop`; otherwise the terminal error.
    pub error: Option<EngineError>,
}

impl TransientOutcome {
    /// Collapses to the classic all-or-nothing view: the full result on a
    /// clean run, the terminal error (partial waveform dropped) otherwise.
    ///
    /// # Errors
    ///
    /// Returns the terminal error of a partial run.
    pub fn into_result(self) -> Result<TransientResult> {
        match self.error {
            None => Ok(self.result),
            Some(e) => Err(e),
        }
    }
}

/// Runs a serial variable-step transient analysis of `circuit` from 0 to
/// `tstop`.
///
/// `tstep` is the suggested initial/reporting step (as in `.tran`), not a
/// fixed step: the controller adapts freely between `hmin` and `hmax`.
///
/// # Errors
///
/// * [`EngineError::BadParameter`] for non-positive `tstep`/`tstop`.
/// * [`EngineError::Circuit`] for invalid netlists.
/// * [`EngineError::NoConvergence`] if the DC operating point fails.
/// * [`EngineError::TimestepTooSmall`] if error control collapses the step.
/// * [`EngineError::DeadlineExceeded`] / [`EngineError::Cancelled`] when a
///   configured budget ends the run early (use
///   [`run_transient_recoverable`] to keep the partial waveform).
pub fn run_transient(
    circuit: &Circuit,
    tstep: f64,
    tstop: f64,
    opts: &SimOptions,
) -> Result<TransientResult> {
    run_transient_recoverable(circuit, tstep, tstop, opts)?.into_result()
}

/// [`run_transient`] on an already-compiled system (avoids recompilation
/// when the same circuit is simulated repeatedly).
///
/// # Errors
///
/// Same as [`run_transient`].
pub fn run_transient_compiled(
    sys: &Arc<MnaSystem>,
    tstep: f64,
    tstop: f64,
    opts: &SimOptions,
) -> Result<TransientResult> {
    run_transient_recoverable_compiled(sys, tstep, tstop, opts)?.into_result()
}

/// [`run_transient`], keeping the accepted waveform prefix when the run ends
/// early: a `TimestepTooSmall` at `t = 0.9 * tstop` (or an expired deadline)
/// returns 90% of the waveform plus the error instead of nothing.
///
/// # Errors
///
/// Only for failures *before* any stepping happens — bad parameters, an
/// invalid circuit, or an unconverged initial state. Every later failure is
/// reported through [`TransientOutcome::error`].
pub fn run_transient_recoverable(
    circuit: &Circuit,
    tstep: f64,
    tstop: f64,
    opts: &SimOptions,
) -> Result<TransientOutcome> {
    let sys = Arc::new(MnaSystem::compile(circuit)?);
    run_transient_recoverable_compiled(&sys, tstep, tstop, opts)
}

/// [`run_transient_recoverable`] on an already-compiled system.
///
/// # Errors
///
/// Same as [`run_transient_recoverable`].
pub fn run_transient_recoverable_compiled(
    sys: &Arc<MnaSystem>,
    tstep: f64,
    tstop: f64,
    opts: &SimOptions,
) -> Result<TransientOutcome> {
    if !(tstop > 0.0 && tstop.is_finite()) {
        return Err(EngineError::BadParameter { name: "tstop", value: tstop });
    }
    if !(tstep > 0.0 && tstep.is_finite()) {
        return Err(EngineError::BadParameter { name: "tstep", value: tstep });
    }
    let run_start = Instant::now();
    let mut stats = SimStats::new();
    let mut solver = PointSolver::new(Arc::clone(sys), opts.clone());
    let node_names: Vec<String> = (0..sys.n_nodes()).map(|i| nth_node_name(sys, i)).collect();
    let mut result = TransientResult::new(sys.n_unknowns(), node_names);
    result.set_branch_names(sys.branch_names().to_vec());

    // t = 0: DC operating point (or the UIC initial-condition solve).
    let x0 = solver.initial_state(&mut stats)?;
    result.push(0.0, &x0);
    let mut hw = HistoryWindow::start(x0, sys.cap_state_count());

    // The wall-clock budget starts now — after the initial solve, so even a
    // zero budget yields the `t = 0` point.
    opts.arm_deadline();

    let bps = sys.breakpoints(tstop);
    let mut next_bp = 0usize;
    let hmin = opts.hmin(tstop);
    let hmax = opts.hmax(tstop);
    let mut h = tstep.min(hmax).min(tstop / 100.0).max(hmin);

    // Consecutive LTE rejections at the same position: the signature of an
    // h-independent error floor (trapezoidal ringing, solver-noise-dominated
    // divided differences). Escape by restarting integration with the
    // damped order-1 method instead of shrinking the step forever.
    let mut lte_reject_streak = 0usize;
    // The stepping loop proper, with every mid-run failure funnelled into a
    // captured error so the accepted prefix survives.
    let loop_outcome = (|| -> Result<()> {
        while hw.t() < tstop - 0.5 * hmin {
            opts.check_budget(hw.t())?;
            if !h.is_finite() {
                return Err(EngineError::NumericalBlowup { time: hw.t() });
            }
            h = h.clamp(hmin, hmax);
            // Propose the next time, snapping onto breakpoints.
            let mut t_new = hw.t() + h;
            let mut hit_bp = false;
            while next_bp < bps.len() && bps[next_bp] <= hw.t() + 0.5 * hmin {
                next_bp += 1; // skip already-passed breakpoints
            }
            if next_bp < bps.len() && t_new >= bps[next_bp] - 0.5 * hmin {
                t_new = bps[next_bp];
                hit_bp = true;
            }
            if t_new > tstop {
                t_new = tstop;
            }

            let sol = solver.solve_point(&hw, t_new, None, opts.max_newton_iters)?;
            stats += sol.stats;
            let h_attempt = t_new - hw.t();
            if !sol.converged {
                stats.steps_rejected_newton += 1;
                opts.metrics.inc(Counter::NewtonRejects);
                h = h_attempt * opts.nr_shrink;
                if h < hmin {
                    if !opts.recovery {
                        return Err(EngineError::TimestepTooSmall { time: hw.t(), step: h, hmin });
                    }
                    // The step collapsed below the floor: enter the recovery
                    // ladder instead of giving up. A rescued point is a fully
                    // converged true-system solution; accept it like any
                    // other (LTE cannot reject a step at or below `hmin`)
                    // and restart integration cautiously from the floor.
                    let rescued =
                        solver.rescue_point(&hw, h_attempt, hmin, sol.iterations, &mut stats)?;
                    if !wavepipe_sparse::vector::all_finite(&rescued.x) {
                        return Err(EngineError::NumericalBlowup { time: rescued.t });
                    }
                    let t_rescued = rescued.t;
                    opts.probe.emit(t_rescued, EventKind::PointAccepted { h: rescued.coeffs.h });
                    if opts.metrics.enabled() {
                        publish_accept_metrics(&opts.metrics, rescued.coeffs.h, hmin);
                    }
                    hw.accept(&rescued);
                    result.push(t_rescued, &rescued.x);
                    stats.steps_accepted += 1;
                    hw.mark_discontinuity();
                    lte_reject_streak = 0;
                    h = hmin;
                }
                continue;
            }
            if !wavepipe_sparse::vector::all_finite(&sol.x) {
                return Err(EngineError::NumericalBlowup { time: t_new });
            }

            // LTE accept/reject when enough smooth history exists.
            let needed = sol.method.order() + 1;
            if hw.usable_for_lte() >= needed {
                let refs: Vec<&[f64]> =
                    hw.solutions()[..needed].iter().map(|v| v.as_slice()).collect();
                let d = lte_step_control(
                    sol.method,
                    t_new,
                    &sol.x,
                    h_attempt,
                    &hw.times()[..needed],
                    &refs,
                    opts,
                );
                if !d.accept && h_attempt > hmin * 1.01 {
                    stats.steps_rejected_lte += 1;
                    opts.metrics.inc(Counter::LteRejects);
                    lte_reject_streak += 1;
                    // Two signatures of an error floor the step cannot buy out
                    // of: several rejections in a row, or a rejection while
                    // already crawling far below the natural step scale. Either
                    // way the estimate is dominated by point-to-point artifacts
                    // (trapezoidal ringing / solver noise), which shrinking h
                    // cannot fix — damp them with a backward-Euler restart.
                    let crawling = h_attempt < hmin * 1e3;
                    if lte_reject_streak >= 3 || crawling {
                        hw.mark_discontinuity();
                        lte_reject_streak = 0;
                        h = h_attempt;
                    } else {
                        h = d.h_new;
                    }
                    continue;
                }
                lte_reject_streak = 0;
                h = d.h_new;
            } else {
                h = h_attempt * opts.rmax;
            }

            opts.probe.emit(t_new, EventKind::PointAccepted { h: sol.coeffs.h });
            if opts.metrics.enabled() {
                publish_accept_metrics(&opts.metrics, sol.coeffs.h, h);
            }
            hw.accept(&sol);
            result.push(t_new, &sol.x);
            stats.steps_accepted += 1;

            if hit_bp {
                next_bp += 1;
                hw.mark_discontinuity();
                // Restart cautiously after the corner.
                let to_next = bps.get(next_bp).map_or(tstop - hw.t(), |&b| b - hw.t());
                h = h.min(tstep * 0.25).min((to_next * 0.25).max(hmin));
            }
        }
        Ok(())
    })();

    stats.wall_ns = run_start.elapsed().as_nanos();
    result.set_stats(stats);
    Ok(TransientOutcome { result, error: loop_outcome.err() })
}

fn nth_node_name(sys: &MnaSystem, unknown: usize) -> String {
    sys.node_name_of(unknown).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wavepipe_circuit::Waveform;

    fn rc_circuit(tau_r: f64, tau_c: f64) -> Circuit {
        let mut ckt = Circuit::new("rc step");
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_vsource(
            "V1",
            a,
            Circuit::GROUND,
            Waveform::pulse(0.0, 1.0, 0.0, 1e-12, 1e-12, 1.0, 0.0),
        )
        .unwrap();
        ckt.add_resistor("R1", a, b, tau_r).unwrap();
        ckt.add_capacitor("C1", b, Circuit::GROUND, tau_c).unwrap();
        ckt
    }

    #[test]
    fn rc_step_response_matches_analytic() {
        // tau = 1k * 1n = 1 us. Simulate 5 tau; compare against 1-exp(-t/tau).
        let ckt = rc_circuit(1e3, 1e-9);
        let opts = SimOptions::default();
        let res = run_transient(&ckt, 1e-8, 5e-6, &opts).unwrap();
        let b = res.unknown_of("b").unwrap();
        let tau = 1e-6;
        let mut worst = 0.0_f64;
        for &t in res.times() {
            if t < 5e-12 {
                continue;
            }
            let exact = 1.0 - (-t / tau).exp();
            worst = worst.max((res.sample(b, t) - exact).abs());
        }
        assert!(worst < 5e-3, "max error vs analytic = {worst}");
        assert!(res.stats().steps_accepted > 20);
    }

    #[test]
    fn all_methods_agree_on_rc() {
        let ckt = rc_circuit(1e3, 1e-9);
        let mut results = Vec::new();
        for m in [Method::BackwardEuler, Method::Trapezoidal, Method::Gear2] {
            let opts = SimOptions::default().with_method(m);
            results.push(run_transient(&ckt, 1e-8, 3e-6, &opts).unwrap());
        }
        let b = results[0].unknown_of("b").unwrap();
        for r in &results[1..] {
            let dev = results[0].max_deviation(r, b);
            assert!(dev < 2e-2, "method disagreement {dev}");
        }
    }

    #[test]
    fn step_grows_on_smooth_waveforms() {
        let ckt = rc_circuit(1e3, 1e-9);
        let res = run_transient(&ckt, 1e-9, 5e-6, &SimOptions::default()).unwrap();
        let hs = res.step_sizes();
        let early: f64 = hs[1];
        let late = hs[hs.len() - 2];
        assert!(late > 4.0 * early, "steps should grow: early {early:.2e}, late {late:.2e}");
    }

    #[test]
    fn breakpoints_are_hit_exactly() {
        let mut ckt = Circuit::new("pulse");
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_vsource(
            "V1",
            a,
            Circuit::GROUND,
            Waveform::pulse(0.0, 1.0, 2e-6, 1e-7, 1e-7, 1e-6, 0.0),
        )
        .unwrap();
        ckt.add_resistor("R1", a, b, 1e3).unwrap();
        ckt.add_capacitor("C1", b, Circuit::GROUND, 1e-10).unwrap();
        let res = run_transient(&ckt, 1e-8, 5e-6, &SimOptions::default()).unwrap();
        for bp in [2e-6, 2.1e-6, 3.1e-6, 3.2e-6] {
            assert!(
                res.times().iter().any(|&t| (t - bp).abs() < 1e-15),
                "breakpoint {bp:e} missed"
            );
        }
    }

    #[test]
    fn lc_oscillator_conserves_frequency() {
        // Series RLC with tiny R: ringing frequency ~ 1/(2 pi sqrt(LC)).
        let mut ckt = Circuit::new("rlc");
        let a = ckt.node("a");
        let m = ckt.node("m");
        let b = ckt.node("b");
        ckt.add_vsource(
            "V1",
            a,
            Circuit::GROUND,
            Waveform::pulse(0.0, 1.0, 0.0, 1e-12, 1e-12, 1.0, 0.0),
        )
        .unwrap();
        ckt.add_resistor("R1", a, m, 1.0).unwrap();
        ckt.add_inductor("L1", m, b, 1e-6).unwrap();
        ckt.add_capacitor("C1", b, Circuit::GROUND, 1e-9).unwrap();
        let opts = SimOptions { reltol: 1e-4, ..SimOptions::default() };
        let res = run_transient(&ckt, 1e-9, 2e-6, &opts).unwrap();
        let bidx = res.unknown_of("b").unwrap();
        // Count zero crossings of (v_b - 1): period = 2 pi sqrt(LC) ~ 198.7 ns.
        let trace = res.trace(bidx);
        let mut crossings = 0;
        for w in trace.windows(2) {
            if (w[0].1 - 1.0) * (w[1].1 - 1.0) < 0.0 {
                crossings += 1;
            }
        }
        // 2e-6 / 198.7e-9 ~ 10 periods ~ 20 crossings.
        assert!((crossings as i64 - 20).abs() <= 3, "crossings = {crossings}");
    }

    #[test]
    fn bad_parameters_rejected() {
        let ckt = rc_circuit(1e3, 1e-9);
        assert!(matches!(
            run_transient(&ckt, 0.0, 1e-6, &SimOptions::default()),
            Err(EngineError::BadParameter { name: "tstep", .. })
        ));
        assert!(matches!(
            run_transient(&ckt, 1e-9, -1.0, &SimOptions::default()),
            Err(EngineError::BadParameter { name: "tstop", .. })
        ));
    }

    #[test]
    fn history_window_effective_method() {
        let mut hw = HistoryWindow::start(vec![0.0], 0);
        assert_eq!(hw.effective_method(Method::Trapezoidal), Method::BackwardEuler);
        assert_eq!(hw.effective_method(Method::Gear2), Method::BackwardEuler);
        let sol = PointSolution {
            t: 1.0,
            x: vec![1.0],
            method: Method::BackwardEuler,
            coeffs: IntegCoeffs::new(Method::BackwardEuler, 1.0, 1.0),
            converged: true,
            iterations: 1,
            cap_currents: Vec::new(),
            stats: SimStats::new(),
        };
        // Accept without a real system: emulate by direct field updates.
        hw.times.insert(0, sol.t);
        hw.xs.insert(0, sol.x.clone());
        hw.points_since_restart += 1;
        assert_eq!(hw.effective_method(Method::Trapezoidal), Method::Trapezoidal);
        assert_eq!(hw.effective_method(Method::Gear2), Method::BackwardEuler);
        hw.mark_discontinuity();
        assert_eq!(hw.effective_method(Method::Trapezoidal), Method::BackwardEuler);
    }

    #[test]
    fn predictor_extrapolates_linearly() {
        let mut hw = HistoryWindow::start(vec![2.0], 0);
        hw.times.insert(0, 1.0);
        hw.xs.insert(0, vec![4.0]);
        hw.points_since_restart = 1;
        let p = hw.predict(2.0);
        assert!((p[0] - 6.0).abs() < 1e-12, "p = {}", p[0]);
    }
}
