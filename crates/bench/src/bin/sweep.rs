//! Prints the batched corner-sweep figure (BatchSim vs the independent
//! one-run-at-a-time loop on a many-instance parameter sweep) and writes
//! the row to `BENCH_sweep.json`.
//!
//! Usage: `cargo run --release -p wavepipe-bench --bin sweep [-- --small]`

use wavepipe_bench::sweep::{fig_sweep, sweep_to_json};
use wavepipe_circuit::generators;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let small = args.iter().any(|a| a == "--small");

    // The acceptance configuration: a 100-instance corner sweep of the
    // 8-stage inverter chain on 8 modeled workers. `--small` shrinks both
    // chain and corner count for the CI smoke leg.
    let (subject, instances, workers) = if small {
        (generators::inverter_chain(4), 10, 4)
    } else {
        (generators::inverter_chain(8), 100, 8)
    };

    let (txt, row) = fig_sweep(&subject, instances, workers);
    println!("{txt}");

    if !small {
        assert!(
            row.modeled_speedup >= 5.0,
            "acceptance: modeled speedup {:.2}x below the 5x floor",
            row.modeled_speedup
        );
        // The SIMD-tier floor only binds when the lane tier actually ran:
        // on the forced-scalar leg (`WAVEPIPE_SIMD=0`) the figure reports a
        // placeholder 1.0 and there is nothing to gate.
        if row.simd_speedup != 1.0 {
            assert!(
                row.simd_speedup >= 1.5,
                "acceptance: measured SIMD-tier speedup {:.2}x below the 1.5x floor",
                row.simd_speedup
            );
        }
    }

    std::fs::write("BENCH_sweep.json", sweep_to_json(&[row]))?;
    println!("wrote BENCH_sweep.json");
    Ok(())
}
