//! Larger-scale stress runs. The default-run sizes keep CI fast; the
//! `#[ignore]`d giants are for manual scaling checks
//! (`cargo test --release -- --ignored`).

use wavepipe::circuit::generators;
use wavepipe::core::{run_wavepipe, verify, Scheme, WavePipeOptions};
use wavepipe::engine::{run_transient, SimOptions};

#[test]
fn medium_power_grid_under_all_schemes() {
    let b = generators::power_grid(6, 6);
    let serial = run_transient(&b.circuit, b.tstep, b.tstop, &SimOptions::default()).unwrap();
    // Keep three pipeline lanes even when `WAVEPIPE_STAMP_WORKERS` forces the
    // two-level split on: the speedup assertion below is about lane-level
    // pipelining, which needs the lanes to survive the thread-budget division.
    let threads = 3 * WavePipeOptions::default().stamp_workers.max(1);
    for scheme in [Scheme::Backward, Scheme::Combined, Scheme::Adaptive] {
        let rep =
            run_wavepipe(&b.circuit, b.tstep, b.tstop, &WavePipeOptions::new(scheme, threads))
                .unwrap_or_else(|e| panic!("{scheme}: {e}"));
        let eq = verify::compare(&serial, &rep.result);
        assert!(eq.rms_rel() < 1e-3, "{scheme}: rms {}", eq.rms_rel());
        assert!(
            rep.modeled_speedup(serial.stats()) > 1.0,
            "{scheme}: growth-heavy grid should gain"
        );
    }
}

#[test]
fn sffm_driven_filter_simulates_cleanly() {
    // FM source through a band-ish RC network: a smooth but
    // never-settling waveform that exercises continuous step adaptation.
    use wavepipe::circuit::{Circuit, Waveform};
    let mut ckt = Circuit::new("fm");
    let a = ckt.node("a");
    let b = ckt.node("b");
    ckt.add_vsource(
        "V1",
        a,
        Circuit::GROUND,
        Waveform::Sffm { vo: 0.0, va: 1.0, fc: 5e6, mdi: 3.0, fs: 0.5e6 },
    )
    .unwrap();
    ckt.add_resistor("R1", a, b, 1e3).unwrap();
    ckt.add_capacitor("C1", b, Circuit::GROUND, 20e-12).unwrap();
    let serial = run_transient(&ckt, 2e-9, 4e-6, &SimOptions::default()).unwrap();
    let rep = run_wavepipe(&ckt, 2e-9, 4e-6, &WavePipeOptions::new(Scheme::Backward, 2)).unwrap();
    let eq = verify::compare(&serial, &rep.result);
    assert!(eq.rms_rel() < 0.02, "rms {}", eq.rms_rel());
    // The carrier passes the ~8 MHz filter visibly attenuated but alive.
    let bi = serial.unknown_of("b").unwrap();
    let peak = serial.peak(bi);
    assert!(peak > 0.3 && peak < 1.0, "filtered FM peak {peak}");
}

#[test]
#[ignore = "manual scaling check (~minutes in release)"]
fn large_power_grid_scales() {
    let b = generators::power_grid(20, 20);
    let serial = run_transient(&b.circuit, b.tstep, b.tstop, &SimOptions::default()).unwrap();
    let rep =
        run_wavepipe(&b.circuit, b.tstep, b.tstop, &WavePipeOptions::new(Scheme::Backward, 3))
            .unwrap();
    let eq = verify::compare(&serial, &rep.result);
    assert!(eq.rms_rel() < 1e-3);
    let s = rep.modeled_speedup(serial.stats());
    assert!(s > 1.2, "400-node grid speedup {s}");
}

#[test]
#[ignore = "manual scaling check (~minutes in release)"]
fn long_ring_oscillator_run() {
    let b = generators::ring_oscillator(13);
    let serial = run_transient(&b.circuit, b.tstep, b.tstop, &SimOptions::default()).unwrap();
    assert!(serial.len() > 1000);
    let rep =
        run_wavepipe(&b.circuit, b.tstep, b.tstop, &WavePipeOptions::new(Scheme::Backward, 2))
            .unwrap();
    let eq = verify::compare(&serial, &rep.result);
    // Autonomous oscillator: phase drift dominates; stay within the
    // serial-methods noise band scale.
    assert!(eq.rms_rel() < 0.3, "rms {}", eq.rms_rel());
}
