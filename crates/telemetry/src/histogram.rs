//! Fixed-bucket histograms for the telemetry summaries.

use std::fmt;

/// A histogram over explicit ascending bucket boundaries.
///
/// A value `v` lands in bucket `i` when `bounds[i-1] <= v < bounds[i]`
/// (bucket 0 is the underflow `v < bounds[0]`, the last bucket the overflow
/// `v >= bounds[last]`). Exact min/max/mean are tracked separately, so the
/// bucketing only affects the shape display and percentile estimates.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// A histogram with the given ascending boundaries (`counts.len() ==
    /// bounds.len() + 1`).
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly ascending.
    pub fn with_bounds(bounds: Vec<f64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one boundary");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram boundaries must be strictly ascending"
        );
        let n = bounds.len() + 1;
        Histogram {
            bounds,
            counts: vec![0; n],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// `n` equal-width buckets between `lo` and `hi` (plus under/overflow).
    pub fn linear(lo: f64, hi: f64, n: usize) -> Self {
        assert!(n >= 1 && hi > lo);
        let w = (hi - lo) / n as f64;
        Self::with_bounds((0..=n).map(|i| lo + w * i as f64).collect())
    }

    /// Logarithmic buckets spanning `10^lo_exp .. 10^hi_exp`, `per_decade`
    /// buckets per decade. Suited to step-size distributions.
    pub fn log10(lo_exp: i32, hi_exp: i32, per_decade: usize) -> Self {
        assert!(hi_exp > lo_exp && per_decade >= 1);
        let steps = (hi_exp - lo_exp) as usize * per_decade;
        let bounds =
            (0..=steps).map(|i| 10f64.powf(lo_exp as f64 + i as f64 / per_decade as f64)).collect();
        Self::with_bounds(bounds)
    }

    /// Unit-width integer buckets `1, 2, ..., max` (plus overflow). Suited
    /// to Newton-iteration counts.
    pub fn integer(max: usize) -> Self {
        Self::with_bounds((1..=max + 1).map(|i| i as f64).collect())
    }

    /// Records one observation.
    pub fn observe(&mut self, v: f64) {
        if v.is_nan() {
            return;
        }
        let idx = self.bounds.partition_point(|&b| b <= v);
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean observation (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Approximate `q`-quantile (`0 <= q <= 1`) from the bucket counts,
    /// linearly interpolated *within* the bucket containing the quantile
    /// rank.
    ///
    /// The bucket's edges are clamped to the observed min/max before
    /// interpolating, so a population confined to a single bucket reports
    /// quantiles between its actual extremes instead of the raw bucket
    /// boundary (which over-reported p50/p99 whenever the boundary lay
    /// beyond the observations, and collapsed every quantile to one edge).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                // Effective bucket edges: the nominal boundaries, tightened
                // to the observed range (the open-ended under/overflow
                // buckets have no finite nominal edge on one side).
                let nominal_lo = if i == 0 { self.min } else { self.bounds[i - 1] };
                let nominal_hi = if i == self.bounds.len() { self.max } else { self.bounds[i] };
                let lo = nominal_lo.clamp(self.min, self.max);
                let hi = nominal_hi.clamp(self.min, self.max);
                // Position of the rank within this bucket's population.
                let frac = (rank - seen) as f64 / c as f64;
                return Some(lo + frac * (hi - lo));
            }
            seen += c;
        }
        Some(self.max)
    }

    /// Total of all observations (0 when empty).
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// The bucket boundaries this histogram was built with.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Cumulative `(upper_bound, count_below_or_equal)` pairs in Prometheus
    /// `le` convention; the final pair's bound is `+inf` and its count the
    /// total.
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let mut cum = 0u64;
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                cum += c;
                let le = self.bounds.get(i).copied().unwrap_or(f64::INFINITY);
                (le, cum)
            })
            .collect()
    }

    /// Merges another histogram with *identical* bucket boundaries into
    /// this one: counts add, min/max/sum/count combine. Merging is
    /// associative and commutative, so partial histograms from concurrent
    /// lanes can be folded in any order.
    ///
    /// # Panics
    ///
    /// Panics if the boundary vectors differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bounds, other.bounds, "histogram merge requires identical boundaries");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Per-bucket `(lower_bound, count)` pairs for non-empty buckets; the
    /// underflow bucket reports the observed minimum as its bound.
    pub fn nonzero_buckets(&self) -> Vec<(f64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| {
                let lo = if i == 0 { self.min } else { self.bounds[i - 1] };
                (lo, c)
            })
            .collect()
    }
}

impl fmt::Display for Histogram {
    /// Compact one-bucket-per-line rendering with bar lengths normalised to
    /// the fullest bucket.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.count == 0 {
            return write!(f, "(empty)");
        }
        let peak = *self.counts.iter().max().expect("non-empty counts") as f64;
        for (lo, c) in self.nonzero_buckets() {
            let bar = "#".repeat(((c as f64 / peak) * 40.0).ceil() as usize);
            writeln!(f, "  {lo:>12.3e} | {c:>8} {bar}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observations_land_in_the_right_buckets() {
        let mut h = Histogram::integer(4); // bounds 1,2,3,4,5
        for v in [0.5, 1.0, 1.9, 2.0, 4.0, 10.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        // under(=<1): 0.5 | [1,2): 1.0,1.9 | [2,3): 2.0 | [4,5): 4.0 | over: 10
        assert_eq!(h.nonzero_buckets(), vec![(0.5, 1), (1.0, 2), (2.0, 1), (4.0, 1), (5.0, 1),]);
        assert_eq!(h.min(), Some(0.5));
        assert_eq!(h.max(), Some(10.0));
    }

    #[test]
    fn log_buckets_cover_decades() {
        let mut h = Histogram::log10(-12, -6, 2);
        h.observe(1e-9);
        h.observe(3e-9);
        h.observe(1e-3); // overflow
        assert_eq!(h.count(), 3);
        assert!(h.mean().unwrap() > 0.0);
    }

    #[test]
    fn quantiles_are_monotone_and_bounded() {
        let mut h = Histogram::linear(0.0, 10.0, 10);
        for i in 0..100 {
            h.observe(i as f64 / 10.0);
        }
        let q50 = h.quantile(0.5).unwrap();
        let q90 = h.quantile(0.9).unwrap();
        assert!(q50 <= q90);
        assert!(q90 <= h.max().unwrap());
        assert!(h.quantile(0.0).unwrap() >= h.min().unwrap());
    }

    #[test]
    fn empty_histogram_degrades() {
        let h = Histogram::integer(3);
        assert_eq!(h.count(), 0);
        assert!(h.mean().is_none());
        assert!(h.quantile(0.5).is_none());
        assert_eq!(format!("{h}"), "(empty)");
    }

    #[test]
    fn nan_is_ignored() {
        let mut h = Histogram::linear(0.0, 1.0, 2);
        h.observe(f64::NAN);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn single_bucket_population_interpolates_between_extremes() {
        // Everything lands in [4, 5): quantiles must stay inside the
        // observed [4.2, 4.8], not report the 4.0 boundary (the old lower
        // bound) or 5.0 (the upper boundary, beyond any observation).
        let mut h = Histogram::linear(0.0, 10.0, 10);
        for v in [4.2, 4.4, 4.6, 4.8] {
            h.observe(v);
        }
        let p50 = h.quantile(0.5).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        assert!((4.2..=4.8).contains(&p50), "p50 = {p50}");
        assert!((4.2..=4.8).contains(&p99), "p99 = {p99}");
        assert!(p50 <= p99);

        // Degenerate single-value population: every quantile is the value.
        let mut one = Histogram::integer(4);
        one.observe(2.5);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(one.quantile(q), Some(2.5));
        }
    }

    #[test]
    fn cumulative_buckets_end_at_inf_total() {
        let mut h = Histogram::integer(2); // bounds 1,2,3
        for v in [0.5, 1.5, 2.5, 9.0] {
            h.observe(v);
        }
        let cum = h.cumulative_buckets();
        assert_eq!(cum.len(), 4);
        assert_eq!(cum[0], (1.0, 1));
        assert_eq!(cum[2], (3.0, 3));
        assert!(cum[3].0.is_infinite());
        assert_eq!(cum[3].1, 4);
    }

    #[test]
    fn merge_combines_counts_and_extremes() {
        let mut a = Histogram::linear(0.0, 10.0, 5);
        let mut b = Histogram::linear(0.0, 10.0, 5);
        a.observe(1.0);
        a.observe(3.0);
        b.observe(7.0);
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.count(), 3);
        assert_eq!(m.min(), Some(1.0));
        assert_eq!(m.max(), Some(7.0));
        assert_eq!(m.sum(), 11.0);
    }

    #[test]
    #[should_panic(expected = "identical boundaries")]
    fn merge_rejects_mismatched_bounds() {
        let mut a = Histogram::linear(0.0, 10.0, 5);
        let b = Histogram::linear(0.0, 10.0, 2);
        a.merge(&b);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Strategy: integer-valued observations (exact in f64, so sums are
    /// associative) spread across under/in/overflow of `linear(0, 32, 8)`.
    fn observations() -> impl Strategy<Value = Vec<f64>> {
        proptest::collection::vec((0usize..56).prop_map(|v| v as f64 - 8.0), 1..64)
    }

    fn filled(vals: &[f64]) -> Histogram {
        let mut h = Histogram::linear(0.0, 32.0, 8);
        for &v in vals {
            h.observe(v);
        }
        h
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn quantiles_are_monotone_in_q(vals in observations()) {
            let h = filled(&vals);
            let qs: Vec<f64> = (0..=20).map(|i| i as f64 / 20.0).collect();
            let mut prev = f64::NEG_INFINITY;
            for q in qs {
                let v = h.quantile(q).expect("non-empty");
                prop_assert!(v >= prev, "quantile({q}) = {v} < previous {prev}");
                prop_assert!(v >= h.min().unwrap() && v <= h.max().unwrap());
                prev = v;
            }
        }

        #[test]
        fn merge_is_associative_and_commutative(
            a in observations(),
            b in observations(),
            c in observations(),
        ) {
            let (ha, hb, hc) = (filled(&a), filled(&b), filled(&c));
            // (a + b) + c
            let mut left = ha.clone();
            left.merge(&hb);
            left.merge(&hc);
            // a + (b + c)
            let mut bc = hb.clone();
            bc.merge(&hc);
            let mut right = ha.clone();
            right.merge(&bc);
            prop_assert_eq!(&left, &right);
            // b + a == a + b
            let mut ab = ha.clone();
            ab.merge(&hb);
            let mut ba = hb.clone();
            ba.merge(&ha);
            prop_assert_eq!(&ab, &ba);
            // The merged histogram equals observing everything into one.
            let all: Vec<f64> = a.iter().chain(&b).chain(&c).copied().collect();
            prop_assert_eq!(&left, &filled(&all));
        }
    }
}
