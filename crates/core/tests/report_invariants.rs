//! Invariants of the WavePipe reports and options across schemes — the
//! bookkeeping that the speedup claims rest on.

use wavepipe_circuit::generators;
use wavepipe_core::{run_wavepipe, Scheme, WavePipeOptions};
use wavepipe_engine::run_transient;

#[test]
fn report_counters_are_internally_consistent() {
    let b = generators::power_grid(4, 4);
    for (scheme, threads) in
        [(Scheme::Backward, 2), (Scheme::Forward, 2), (Scheme::Combined, 4), (Scheme::Adaptive, 3)]
    {
        let rep =
            run_wavepipe(&b.circuit, b.tstep, b.tstop, &WavePipeOptions::new(scheme, threads))
                .unwrap_or_else(|e| panic!("{scheme}: {e}"));
        // Steps counted = points minus the t=0 operating point.
        assert_eq!(rep.result.len(), rep.total.steps_accepted + 1, "{scheme}");
        // Every Newton iteration did exactly one stamp and at most three
        // solves (chord attempt, frozen-pivot pass, fresh-pivot fallback).
        assert!(rep.total.solves <= rep.total.newton_iterations * 3, "{scheme}");
        // Factorization passes: at most a frozen attempt plus a fresh
        // fallback per iteration; frozen-pivot passes are a subset.
        assert!(rep.total.factorizations <= rep.total.newton_iterations * 2, "{scheme}");
        assert!(rep.total.refactorizations <= rep.total.factorizations, "{scheme}");
        assert!(rep.total.jacobian_reuses <= rep.total.newton_iterations, "{scheme}");
        // Critical path bounded by totals and by positivity.
        assert!(rep.critical_work > 0, "{scheme}");
        assert!(rep.critical_work <= rep.total.work_units(), "{scheme}");
        assert!(rep.critical_ns <= rep.total.wall_ns, "{scheme}: cp ns > total ns");
        // Rounds at least the committed points divided by the width.
        assert!(rep.rounds >= rep.total.steps_accepted / threads.max(1), "{scheme}");
    }
}

#[test]
fn serial_work_units_match_between_paths() {
    // The serial scheme and the direct engine call must account identically.
    let b = generators::rc_ladder(6);
    let eng = run_transient(&b.circuit, b.tstep, b.tstop, &WavePipeOptions::default().sim).unwrap();
    let rep = run_wavepipe(&b.circuit, b.tstep, b.tstop, &WavePipeOptions::new(Scheme::Serial, 1))
        .unwrap();
    assert_eq!(rep.total.steps_accepted, eng.stats().steps_accepted);
    assert_eq!(rep.total.newton_iterations, eng.stats().newton_iterations);
    assert_eq!(rep.critical_work, eng.stats().work_units());
}

#[test]
fn options_ablation_knobs_change_behaviour() {
    // Flipping bp_adaptive_lead off forces rmax-ladders: the accept rate
    // drops (over-ambitious leads) but the run stays correct.
    let b = generators::power_grid(4, 4);
    let serial =
        run_transient(&b.circuit, b.tstep, b.tstop, &WavePipeOptions::default().sim).unwrap();
    // Pin serial stamping: the knob only matters when lead lanes exist, and
    // the `WAVEPIPE_STAMP_WORKERS` override would fold 2 threads into 1 lane.
    let mut on = WavePipeOptions::new(Scheme::Backward, 2).with_stamp_workers(0);
    on.bp_adaptive_lead = true;
    let mut off = WavePipeOptions::new(Scheme::Backward, 2).with_stamp_workers(0);
    off.bp_adaptive_lead = false;
    let r_on = run_wavepipe(&b.circuit, b.tstep, b.tstop, &on).unwrap();
    let r_off = run_wavepipe(&b.circuit, b.tstep, b.tstop, &off).unwrap();
    // Both accurate.
    for r in [&r_on, &r_off] {
        let probe = serial.unknown_of(&b.probes[0]).unwrap();
        assert!(serial.max_deviation(&r.result, probe) < 1e-3);
    }
    // And genuinely different schedules.
    assert_ne!(
        (r_on.rounds, r_on.lead_rejected),
        (r_off.rounds, r_off.lead_rejected),
        "knob had no effect"
    );
}

#[test]
fn single_thread_forward_and_combined_degenerate_gracefully() {
    let b = generators::rc_ladder(5);
    for scheme in [Scheme::Forward, Scheme::Combined, Scheme::Adaptive] {
        let rep = run_wavepipe(&b.circuit, b.tstep, b.tstop, &WavePipeOptions::new(scheme, 1))
            .unwrap_or_else(|e| panic!("{scheme} x1: {e}"));
        assert!(rep.result.len() > 5, "{scheme} x1 must still simulate");
        assert_eq!(rep.speculation_accepted + rep.speculation_rejected, 0, "{scheme}");
    }
}
