//! `perf-gate` — CI performance-regression gate. Compares freshly emitted
//! `BENCH_newton.json` / `BENCH_stamp.json` documents against the committed
//! baselines on their ratio-type metrics (speedups), prints a delta table,
//! and exits non-zero when any metric regressed beyond the tolerance.
//!
//! Usage:
//!
//! ```text
//! perf-gate --newton-baseline <file>   --newton-fresh <file> \
//!           --stamp-baseline <file>    --stamp-fresh <file> \
//!           --sweep-baseline <file>    --sweep-fresh <file> \
//!           --overhead-baseline <file> --overhead-fresh <file> \
//!           --solver-baseline <file>   --solver-fresh <file> [--tolerance 0.15]
//! ```

use wavepipe_bench::perfgate::{gate, DEFAULT_TOLERANCE};

fn required(flag: &str, v: Option<String>) -> String {
    v.unwrap_or_else(|| {
        eprintln!("perf-gate: missing required flag {flag} <file>");
        std::process::exit(2);
    })
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut newton_baseline = None;
    let mut newton_fresh = None;
    let mut stamp_baseline = None;
    let mut stamp_fresh = None;
    let mut sweep_baseline = None;
    let mut sweep_fresh = None;
    let mut overhead_baseline = None;
    let mut overhead_fresh = None;
    let mut solver_baseline = None;
    let mut solver_fresh = None;
    let mut tolerance = DEFAULT_TOLERANCE;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--newton-baseline" => newton_baseline = args.next(),
            "--newton-fresh" => newton_fresh = args.next(),
            "--stamp-baseline" => stamp_baseline = args.next(),
            "--stamp-fresh" => stamp_fresh = args.next(),
            "--sweep-baseline" => sweep_baseline = args.next(),
            "--sweep-fresh" => sweep_fresh = args.next(),
            "--overhead-baseline" => overhead_baseline = args.next(),
            "--overhead-fresh" => overhead_fresh = args.next(),
            "--solver-baseline" => solver_baseline = args.next(),
            "--solver-fresh" => solver_fresh = args.next(),
            "--tolerance" => {
                let t = args.next().and_then(|v| v.parse::<f64>().ok());
                tolerance = t.unwrap_or_else(|| {
                    eprintln!("perf-gate: --tolerance needs a number like 0.15");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("perf-gate: unknown argument `{other}`");
                std::process::exit(2);
            }
        }
    }
    let read = |name: &str, path: String| {
        std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("perf-gate: cannot read {name} {path}: {e}");
            std::process::exit(2);
        })
    };
    let nb = read("newton baseline", required("--newton-baseline", newton_baseline));
    let nf = read("newton fresh", required("--newton-fresh", newton_fresh));
    let sb = read("stamp baseline", required("--stamp-baseline", stamp_baseline));
    let sf = read("stamp fresh", required("--stamp-fresh", stamp_fresh));
    let wb = read("sweep baseline", required("--sweep-baseline", sweep_baseline));
    let wf = read("sweep fresh", required("--sweep-fresh", sweep_fresh));
    let ob = read("overhead baseline", required("--overhead-baseline", overhead_baseline));
    let of = read("overhead fresh", required("--overhead-fresh", overhead_fresh));
    let vb = read("solver baseline", required("--solver-baseline", solver_baseline));
    let vf = read("solver fresh", required("--solver-fresh", solver_fresh));

    match gate(&nb, &nf, &sb, &sf, &wb, &wf, &ob, &of, &vb, &vf, tolerance) {
        Ok(report) => {
            print!("{}", report.table());
            if report.passed() {
                println!("perf gate: PASS");
            } else {
                println!("perf gate: FAIL ({} regressed metrics)", report.failures().len());
                std::process::exit(1);
            }
        }
        Err(msg) => {
            eprintln!("perf-gate: {msg}");
            std::process::exit(1);
        }
    }
}
