//! DC sweep analysis: solve the operating point while stepping one
//! independent source through a value list, warm-starting Newton from the
//! previous point (the classic `.dc` transfer-curve analysis).

use crate::dcop::dc_operating_point;
use crate::error::{EngineError, Result};
use crate::mna::{MnaSystem, StampInput};
use crate::newton::{newton_solve, LinearCache};
use crate::options::SimOptions;
use crate::stats::SimStats;
use wavepipe_circuit::Circuit;

/// Result of a DC sweep: one full solution per sweep value.
#[derive(Debug, Clone)]
pub struct DcSweepResult {
    values: Vec<f64>,
    data: Vec<f64>,
    n_unknowns: usize,
    node_names: Vec<String>,
    stats: SimStats,
}

impl DcSweepResult {
    /// The sweep values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Unknown index of a node name, if present.
    pub fn unknown_of(&self, node_name: &str) -> Option<usize> {
        self.node_names.iter().position(|n| n == node_name)
    }

    /// Solution vector at sweep point `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn solution(&self, k: usize) -> &[f64] {
        &self.data[k * self.n_unknowns..(k + 1) * self.n_unknowns]
    }

    /// `(sweep value, unknown value)` transfer curve of one unknown.
    ///
    /// # Panics
    ///
    /// Panics if `unknown` is out of range.
    pub fn trace(&self, unknown: usize) -> Vec<(f64, f64)> {
        assert!(unknown < self.n_unknowns);
        self.values
            .iter()
            .enumerate()
            .map(|(k, &v)| (v, self.data[k * self.n_unknowns + unknown]))
            .collect()
    }

    /// Accumulated solver statistics.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }
}

/// Sweeps the named independent source through `values`, solving the DC
/// operating point at each.
///
/// ```
/// use wavepipe_circuit::{Circuit, Waveform};
/// use wavepipe_engine::{run_dc_sweep, SimOptions};
///
/// # fn main() -> Result<(), wavepipe_engine::EngineError> {
/// let mut ckt = Circuit::new("divider");
/// let a = ckt.node("a");
/// let b = ckt.node("b");
/// ckt.add_vsource("V1", a, Circuit::GROUND, Waveform::dc(0.0))?;
/// ckt.add_resistor("R1", a, b, 1e3)?;
/// ckt.add_resistor("R2", b, Circuit::GROUND, 1e3)?;
/// let sweep = run_dc_sweep(&ckt, "V1", &[0.0, 1.0, 2.0], &SimOptions::default())?;
/// let out = sweep.unknown_of("b").expect("node");
/// assert!((sweep.trace(out)[2].1 - 1.0).abs() < 1e-9); // 2 V in -> 1 V out
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// * [`EngineError::UnknownSource`] if no independent source has that name.
/// * [`EngineError::BadParameter`] for an empty value list.
/// * [`EngineError::NoConvergence`] if some point cannot be solved even with
///   continuation.
pub fn run_dc_sweep(
    circuit: &Circuit,
    source: &str,
    values: &[f64],
    opts: &SimOptions,
) -> Result<DcSweepResult> {
    if values.is_empty() {
        return Err(EngineError::BadParameter { name: "values", value: 0.0 });
    }
    let mut sys = MnaSystem::compile(circuit)?;
    sys.set_source(source, values[0])?;
    let n = sys.n_unknowns();
    let mut ws = sys.new_workspace();
    let mut cache = LinearCache::for_options(opts);
    let mut stats = SimStats::new();
    let zeros = vec![0.0; n];
    let caps = vec![0.0; sys.cap_state_count()];

    let mut data = Vec::with_capacity(values.len() * n);
    // First point with full continuation.
    //
    // The sweep mutates `sys` between points, so the stamp executor's frozen
    // snapshot would go stale: every solve here stays on the serial path.
    let mut x = dc_operating_point(&sys, &mut ws, &mut cache, None, opts, &mut stats)?;
    data.extend_from_slice(&x);

    for &v in &values[1..] {
        sys.set_source(source, v)?;
        let input = StampInput {
            time: 0.0,
            coeffs: None,
            x_prev: &zeros,
            x_prev2: &zeros,
            cap_currents: &caps,
            gmin: opts.gmin,
            gshunt: 0.0,
            source_scale: 1.0,
            ic_mode: false,
        };
        // Warm start from the previous sweep point; fall back to full
        // continuation if the jump is too large.
        let out = newton_solve(
            &sys,
            &mut ws,
            &mut cache,
            None,
            &input,
            &x,
            opts.max_dc_iters,
            opts,
            &mut stats,
        )?;
        x = if out.converged {
            out.x
        } else {
            dc_operating_point(&sys, &mut ws, &mut cache, None, opts, &mut stats)?
        };
        data.extend_from_slice(&x);
    }

    Ok(DcSweepResult {
        values: values.to_vec(),
        data,
        n_unknowns: n,
        node_names: sys.node_names().to_vec(),
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wavepipe_circuit::{Circuit, DiodeModel, MosModel, Waveform};

    fn linspace(a: f64, b: f64, n: usize) -> Vec<f64> {
        (0..n).map(|k| a + (b - a) * k as f64 / (n - 1) as f64).collect()
    }

    #[test]
    fn resistive_divider_sweep_is_linear() {
        let mut ckt = Circuit::new("div");
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_vsource("V1", a, Circuit::GROUND, Waveform::dc(0.0)).unwrap();
        ckt.add_resistor("R1", a, b, 3e3).unwrap();
        ckt.add_resistor("R2", b, Circuit::GROUND, 1e3).unwrap();
        let vals = linspace(-5.0, 5.0, 21);
        let res = run_dc_sweep(&ckt, "V1", &vals, &SimOptions::default()).unwrap();
        let bi = res.unknown_of("b").unwrap();
        for (v, vb) in res.trace(bi) {
            assert!((vb - 0.25 * v).abs() < 1e-6, "v={v}: {vb}");
        }
    }

    #[test]
    fn inverter_vtc_is_monotone_rail_to_rail() {
        let mut ckt = Circuit::new("inv");
        let vdd = ckt.node("vdd");
        let inp = ckt.node("in");
        let out = ckt.node("out");
        ckt.add_vsource("Vdd", vdd, Circuit::GROUND, Waveform::dc(3.3)).unwrap();
        ckt.add_vsource("Vin", inp, Circuit::GROUND, Waveform::dc(0.0)).unwrap();
        ckt.add_mosfet("Mp", out, inp, vdd, MosModel::pmos()).unwrap();
        ckt.add_mosfet("Mn", out, inp, Circuit::GROUND, MosModel::nmos()).unwrap();
        let vals = linspace(0.0, 3.3, 34);
        // Direct LU pinned: the monotonicity window below is 1e-6 wide, and
        // at the flat 3.3 V rail an iterative solve's residual-level wiggle
        // (~1e-6 under `WAVEPIPE_SOLVER=gmres`) is enough to break it.
        let opts = SimOptions::default().with_solver(crate::SolverHandle::direct());
        let res = run_dc_sweep(&ckt, "Vin", &vals, &opts).unwrap();
        let oi = res.unknown_of("out").unwrap();
        let vtc = res.trace(oi);
        assert!(vtc.first().unwrap().1 > 3.2, "output high at vin=0");
        assert!(vtc.last().unwrap().1 < 0.1, "output low at vin=vdd");
        for w in vtc.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-6, "vtc must fall monotonically: {w:?}");
        }
        // The switching threshold sits mid-supply-ish.
        let vm = vtc
            .iter()
            .min_by(|a, b| (a.1 - 1.65).abs().partial_cmp(&(b.1 - 1.65).abs()).expect("finite"))
            .unwrap()
            .0;
        assert!(vm > 1.0 && vm < 2.3, "switching threshold {vm}");
    }

    #[test]
    fn diode_iv_curve_is_exponential() {
        let mut ckt = Circuit::new("iv");
        let a = ckt.node("a");
        ckt.add_vsource("V1", a, Circuit::GROUND, Waveform::dc(0.0)).unwrap();
        ckt.add_diode("D1", a, Circuit::GROUND, DiodeModel::default()).unwrap();
        let vals = linspace(0.3, 0.7, 17);
        let res = run_dc_sweep(&ckt, "V1", &vals, &SimOptions::default()).unwrap();
        // Branch current of V1 (flows out of the + terminal into the diode,
        // so i(V1) = -i_diode).
        let br = res.n_unknowns - 1;
        let iv = res.trace(br);
        // Current grows ~ e^(dv/vt): over 0.1 V it multiplies by ~48.
        let i_at = |v: f64| {
            iv.iter()
                .find(|&&(vv, _)| (vv - v).abs() < 1e-9)
                .map(|&(_, i)| -i)
                .expect("point present")
        };
        let ratio = i_at(0.6) / i_at(0.5);
        let expect = (0.1f64 / crate::devices::VT).exp();
        assert!((ratio - expect).abs() / expect < 0.05, "ratio {ratio} vs {expect}");
    }

    #[test]
    fn current_source_sweeps_too() {
        let mut ckt = Circuit::new("isw");
        let a = ckt.node("a");
        ckt.add_isource("I1", Circuit::GROUND, a, Waveform::dc(0.0)).unwrap();
        ckt.add_resistor("R1", a, Circuit::GROUND, 2e3).unwrap();
        let vals = linspace(0.0, 1e-3, 11);
        let res = run_dc_sweep(&ckt, "I1", &vals, &SimOptions::default()).unwrap();
        let ai = res.unknown_of("a").unwrap();
        for (i, va) in res.trace(ai) {
            assert!((va - 2e3 * i).abs() < 1e-6, "i={i}: {va}");
        }
    }

    #[test]
    fn unknown_source_is_an_error() {
        let mut ckt = Circuit::new("t");
        let a = ckt.node("a");
        ckt.add_vsource("V1", a, Circuit::GROUND, Waveform::dc(1.0)).unwrap();
        ckt.add_resistor("R1", a, Circuit::GROUND, 1.0).unwrap();
        assert!(matches!(
            run_dc_sweep(&ckt, "Vnope", &[0.0, 1.0], &SimOptions::default()),
            Err(EngineError::UnknownSource { .. })
        ));
    }

    #[test]
    fn sweep_field_accessors() {
        let mut ckt = Circuit::new("t");
        let a = ckt.node("a");
        ckt.add_vsource("V1", a, Circuit::GROUND, Waveform::dc(1.0)).unwrap();
        ckt.add_resistor("R1", a, Circuit::GROUND, 1.0).unwrap();
        let res = run_dc_sweep(&ckt, "v1", &[1.0, 2.0], &SimOptions::default()).unwrap();
        assert_eq!(res.values(), &[1.0, 2.0]);
        assert_eq!(res.solution(1).len(), res.solution(0).len());
        assert!(res.stats().newton_iterations > 0);
    }
}
