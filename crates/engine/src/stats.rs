//! Work accounting for simulations.
//!
//! Besides the usual SPICE counters (steps, Newton iterations, rejections),
//! the stats carry a *work* measure in abstract cost units and in measured
//! nanoseconds. WavePipe's speedup reports are computed from these: on a
//! p-thread round, the critical-path cost is the maximum of the concurrent
//! tasks' costs, which is what an otherwise-idle p-core machine realises.

use std::ops::{Add, AddAssign};
use std::time::Duration;

/// Counters accumulated during an analysis.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SimStats {
    /// Accepted time points.
    pub steps_accepted: usize,
    /// Time points rejected by the LTE test.
    pub steps_rejected_lte: usize,
    /// Time points abandoned because Newton failed to converge.
    pub steps_rejected_newton: usize,
    /// Total Newton iterations (each is one stamp + refactor + solve).
    pub newton_iterations: usize,
    /// Numeric factorization passes of any kind (fresh pivot search *or*
    /// frozen-pivot refactorization). Chord/modified-Newton iterations that
    /// reuse an existing LU do not count here.
    pub factorizations: usize,
    /// The subset of [`SimStats::factorizations`] that were fast
    /// frozen-pivot refactorizations (no pivot search).
    pub refactorizations: usize,
    /// Triangular solves.
    pub solves: usize,
    /// Individual device evaluations (bypassed devices are not counted).
    pub device_evals: usize,
    /// Nonlinear device evaluations skipped by the SPICE3-style bypass
    /// (cached stamp entries replayed instead).
    pub bypass_hits: usize,
    /// Newton iterations that reused the previous LU factors (chord /
    /// modified-Newton steps) instead of factoring.
    pub jacobian_reuses: usize,
    /// Linear-stamp assemblies skipped because the step-size-keyed
    /// companion cache matched.
    pub companion_hits: usize,
    /// GMRES iterations (Arnoldi steps) on the Krylov solver path. Zero on
    /// direct backends.
    pub krylov_iterations: usize,
    /// Preconditioner (re)builds on the Krylov path — ILU(0) factorizations
    /// or frozen-LU adoptions.
    pub precond_refreshes: usize,
    /// Krylov solves that fell back to direct LU (stagnation, iteration
    /// budget exhaustion, or forced fallback).
    pub solver_fallbacks: usize,
    /// Wall-clock time spent, nanoseconds.
    pub wall_ns: u128,
    /// Wall-clock time spent inside `MnaSystem::stamp` (serial or parallel
    /// path), nanoseconds.
    pub stamp_ns: u128,
    /// Critical-path model of the stamp time, nanoseconds: on the parallel
    /// path this is the busiest worker's evaluation time plus the
    /// master-serial snapshot/accumulate overhead — what an otherwise-idle
    /// machine with enough cores would realise. On the serial path it equals
    /// [`SimStats::stamp_ns`].
    pub stamp_modeled_ns: u128,
}

impl SimStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        SimStats::default()
    }

    /// Abstract work units: one unit per device evaluation plus a fixed
    /// charge per matrix operation. This is the hardware-independent cost
    /// model used for critical-path speedups.
    pub fn work_units(&self) -> u64 {
        const FACTOR_COST: u64 = 40;
        const REFACTOR_COST: u64 = 12;
        const SOLVE_COST: u64 = 4;
        // `refactorizations` is a subset of `factorizations`: charge the
        // fresh-pivot passes at full cost and the frozen-pivot passes at the
        // cheaper rate.
        let fresh = (self.factorizations - self.refactorizations) as u64;
        self.device_evals as u64
            + FACTOR_COST * fresh
            + REFACTOR_COST * self.refactorizations as u64
            + SOLVE_COST * self.solves as u64
    }

    /// Wall time as a [`Duration`], saturating at `u64::MAX` nanoseconds
    /// (~584 years) instead of silently truncating the `u128` counter.
    pub fn wall_time(&self) -> Duration {
        Duration::from_nanos(u64::try_from(self.wall_ns).unwrap_or(u64::MAX))
    }

    /// Total rejected points.
    pub fn steps_rejected(&self) -> usize {
        self.steps_rejected_lte + self.steps_rejected_newton
    }

    /// Mean Newton iterations per accepted point.
    pub fn newton_per_step(&self) -> f64 {
        if self.steps_accepted == 0 {
            0.0
        } else {
            self.newton_iterations as f64 / self.steps_accepted as f64
        }
    }
}

impl Add for SimStats {
    type Output = SimStats;

    fn add(self, rhs: SimStats) -> SimStats {
        SimStats {
            steps_accepted: self.steps_accepted + rhs.steps_accepted,
            steps_rejected_lte: self.steps_rejected_lte + rhs.steps_rejected_lte,
            steps_rejected_newton: self.steps_rejected_newton + rhs.steps_rejected_newton,
            newton_iterations: self.newton_iterations + rhs.newton_iterations,
            factorizations: self.factorizations + rhs.factorizations,
            refactorizations: self.refactorizations + rhs.refactorizations,
            solves: self.solves + rhs.solves,
            device_evals: self.device_evals + rhs.device_evals,
            bypass_hits: self.bypass_hits + rhs.bypass_hits,
            jacobian_reuses: self.jacobian_reuses + rhs.jacobian_reuses,
            companion_hits: self.companion_hits + rhs.companion_hits,
            krylov_iterations: self.krylov_iterations + rhs.krylov_iterations,
            precond_refreshes: self.precond_refreshes + rhs.precond_refreshes,
            solver_fallbacks: self.solver_fallbacks + rhs.solver_fallbacks,
            wall_ns: self.wall_ns + rhs.wall_ns,
            stamp_ns: self.stamp_ns + rhs.stamp_ns,
            stamp_modeled_ns: self.stamp_modeled_ns + rhs.stamp_modeled_ns,
        }
    }
}

impl AddAssign for SimStats {
    fn add_assign(&mut self, rhs: SimStats) {
        *self = *self + rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_units_monotone_in_counters() {
        let a = SimStats { device_evals: 10, solves: 1, ..SimStats::new() };
        let b = SimStats { device_evals: 10, solves: 2, ..SimStats::new() };
        assert!(b.work_units() > a.work_units());
    }

    #[test]
    fn add_accumulates() {
        let a = SimStats { steps_accepted: 3, newton_iterations: 9, ..SimStats::new() };
        let b = SimStats { steps_accepted: 2, newton_iterations: 4, ..SimStats::new() };
        let c = a + b;
        assert_eq!(c.steps_accepted, 5);
        assert_eq!(c.newton_iterations, 13);
        assert!((c.newton_per_step() - 13.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn newton_per_step_handles_zero() {
        assert_eq!(SimStats::new().newton_per_step(), 0.0);
    }

    #[test]
    fn wall_time_saturates_instead_of_truncating() {
        let s = SimStats { wall_ns: u128::from(u64::MAX) + 12345, ..SimStats::new() };
        assert_eq!(s.wall_time(), Duration::from_nanos(u64::MAX));
        let exact = SimStats { wall_ns: 1_500_000_000, ..SimStats::new() };
        assert_eq!(exact.wall_time(), Duration::new(1, 500_000_000));
    }

    #[test]
    fn stamp_timings_accumulate() {
        let a = SimStats { stamp_ns: 100, stamp_modeled_ns: 60, ..SimStats::new() };
        let b = SimStats { stamp_ns: 50, stamp_modeled_ns: 20, ..SimStats::new() };
        let c = a + b;
        assert_eq!(c.stamp_ns, 150);
        assert_eq!(c.stamp_modeled_ns, 80);
    }

    #[test]
    fn frozen_pivot_passes_are_charged_cheaper() {
        // `refactorizations` is the frozen-pivot subset of `factorizations`.
        let fresh = SimStats { factorizations: 2, ..SimStats::new() };
        let frozen = SimStats { factorizations: 2, refactorizations: 2, ..SimStats::new() };
        assert!(frozen.work_units() < fresh.work_units());
    }

    #[test]
    fn caching_counters_accumulate() {
        let a =
            SimStats { bypass_hits: 5, jacobian_reuses: 2, companion_hits: 1, ..SimStats::new() };
        let b =
            SimStats { bypass_hits: 1, jacobian_reuses: 3, companion_hits: 4, ..SimStats::new() };
        let c = a + b;
        assert_eq!(c.bypass_hits, 6);
        assert_eq!(c.jacobian_reuses, 5);
        assert_eq!(c.companion_hits, 5);
    }

    #[test]
    fn krylov_counters_accumulate() {
        let a = SimStats {
            krylov_iterations: 7,
            precond_refreshes: 2,
            solver_fallbacks: 1,
            ..SimStats::new()
        };
        let b = SimStats { krylov_iterations: 3, precond_refreshes: 1, ..SimStats::new() };
        let c = a + b;
        assert_eq!(c.krylov_iterations, 10);
        assert_eq!(c.precond_refreshes, 3);
        assert_eq!(c.solver_fallbacks, 1);
    }

    #[test]
    fn rejected_sums_both_kinds() {
        let s = SimStats { steps_rejected_lte: 2, steps_rejected_newton: 3, ..SimStats::new() };
        assert_eq!(s.steps_rejected(), 5);
    }
}
