//! Restarted GMRES(m) — the generalized minimal residual method.
//!
//! Builds an Arnoldi basis of the right-preconditioned Krylov space
//! `span{r, A·M⁻¹·r, (A·M⁻¹)²·r, …}` via modified Gram–Schmidt, maintains
//! the QR factorization of the small Hessenberg least-squares problem
//! incrementally with Givens rotations (so the residual norm is known at
//! every inner step without forming the iterate), and restarts every `m`
//! steps to bound memory at `m + 1` basis vectors.
//!
//! Right preconditioning is used throughout because the recurrence then
//! minimizes the *true* residual `‖b − A·x‖₂` — the quantity the caller's
//! backward-error acceptance test looks at — rather than the preconditioned
//! residual a left-preconditioned iteration would report.
//!
//! Everything here is bit-deterministic: fixed loop orders, no reductions
//! whose association varies, no randomness. Given the same operator,
//! preconditioner, right-hand side, and options, the returned iterate is
//! bitwise identical on every run — required by the WavePipe determinism
//! contract for solver backends built on top.

use crate::error::{Result, SparseError};
use crate::operator::{Preconditioner, SparseOperator};

/// Tuning knobs for [`gmres`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GmresOptions {
    /// Restart length `m`: the Arnoldi basis is rebuilt after this many
    /// inner iterations. Memory is `O(m·n)`; convergence usually improves
    /// with larger `m`.
    pub restart: usize,
    /// Relative residual target: converged when `‖b − A·x‖₂ ≤ tol·‖b‖₂`.
    pub tol: f64,
    /// Total inner-iteration budget across all restart cycles. `0` means
    /// "don't even try" — the call returns immediately, unconverged, which
    /// callers use to force their fallback path.
    pub max_iters: usize,
}

impl Default for GmresOptions {
    fn default() -> Self {
        GmresOptions { restart: 30, tol: 1e-10, max_iters: 200 }
    }
}

/// What a [`gmres`] call did.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GmresOutcome {
    /// Whether the relative-residual target was met.
    pub converged: bool,
    /// Whether the iteration was cut short because a full restart cycle
    /// failed to make meaningful progress (see [`STAGNATION_FACTOR`]).
    pub stagnated: bool,
    /// Inner (Arnoldi) iterations performed, summed over cycles.
    pub iterations: usize,
    /// Restart cycles *beyond the first* that were started.
    pub restarts: usize,
    /// Final true residual norm `‖b − A·x‖₂`.
    pub residual: f64,
}

/// A restart cycle that fails to shrink the true residual below this
/// fraction of its predecessor counts as stagnation: further cycles would
/// re-explore the same Krylov space, so the iteration reports failure and
/// lets the caller fall back to a direct factorization.
pub const STAGNATION_FACTOR: f64 = 0.99;

fn norm2(v: &[f64]) -> f64 {
    // Fixed-order accumulation: part of the determinism contract.
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Solves `A·x = b` by restarted, right-preconditioned GMRES(m).
///
/// `x` carries the initial guess in and the final iterate out. The solution
/// update is `x ← x + M⁻¹·V·y`, so with a stale-but-decent preconditioner
/// (frozen LU factors of a nearby matrix) convergence is typically a
/// handful of iterations.
///
/// # Errors
///
/// Returns [`SparseError::DimensionMismatch`] when `b`/`x` disagree with
/// the operator or preconditioner dimension, and propagates any error from
/// the operator or preconditioner applications. A non-finite breakdown in
/// the Arnoldi process surfaces as [`SparseError::NotFinite`].
pub fn gmres(
    op: &dyn SparseOperator,
    precond: &dyn Preconditioner,
    b: &[f64],
    x: &mut [f64],
    opts: &GmresOptions,
) -> Result<GmresOutcome> {
    let n = op.dim();
    if b.len() != n {
        return Err(SparseError::DimensionMismatch { expected: n, found: b.len() });
    }
    if x.len() != n {
        return Err(SparseError::DimensionMismatch { expected: n, found: x.len() });
    }
    if precond.dim() != n {
        return Err(SparseError::DimensionMismatch { expected: n, found: precond.dim() });
    }
    let m = opts.restart.max(1).min(n.max(1));
    let bnorm = norm2(b);
    if bnorm == 0.0 {
        // The unique minimizer of a zero right-hand side.
        x.fill(0.0);
        return Ok(GmresOutcome {
            converged: true,
            stagnated: false,
            iterations: 0,
            restarts: 0,
            residual: 0.0,
        });
    }
    let target = opts.tol * bnorm;

    let mut w = vec![0.0f64; n]; // operator output / residual workspace
    let mut z = vec![0.0f64; n]; // preconditioner output
    let mut scratch = vec![0.0f64; n];
    let mut basis: Vec<Vec<f64>> = Vec::with_capacity(m + 1);
    // Upper-triangular R of the Hessenberg QR, column-major, plus the
    // rotated right-hand side g and the Givens coefficients.
    let mut r_cols: Vec<Vec<f64>> = Vec::with_capacity(m);
    let mut g = vec![0.0f64; m + 1];
    let mut cs = vec![0.0f64; m];
    let mut sn = vec![0.0f64; m];

    let mut iterations = 0usize;
    let mut cycles = 0usize;
    let mut prev_beta = f64::INFINITY;
    let (converged, stagnated, residual) = loop {
        // True residual at the top of every cycle (and after the last
        // update): r = b − A·x.
        op.apply(x, &mut w)?;
        for (wi, &bi) in w.iter_mut().zip(b) {
            *wi = bi - *wi;
        }
        let beta = norm2(&w);
        if !beta.is_finite() {
            return Err(SparseError::NotFinite { context: "gmres residual" });
        }
        if beta <= target {
            break (true, false, beta);
        }
        if iterations >= opts.max_iters {
            break (false, false, beta);
        }
        if beta >= STAGNATION_FACTOR * prev_beta {
            break (false, true, beta);
        }
        prev_beta = beta;
        cycles += 1;

        // One Arnoldi cycle of at most m steps.
        basis.clear();
        r_cols.clear();
        let mut v0 = vec![0.0f64; n];
        for (vi, &wi) in v0.iter_mut().zip(&w) {
            *vi = wi / beta;
        }
        basis.push(v0);
        g[..=m].fill(0.0);
        g[0] = beta;
        let mut inner = 0usize;
        for i in 0..m {
            if iterations >= opts.max_iters {
                break;
            }
            // w = A·M⁻¹·v_i.
            precond.apply(&basis[i], &mut z, &mut scratch)?;
            op.apply(&z, &mut w)?;
            // Modified Gram–Schmidt against the existing basis.
            let mut h = vec![0.0f64; i + 2];
            #[allow(clippy::needless_range_loop)]
            for k in 0..=i {
                let hk = dot(&w, &basis[k]);
                h[k] = hk;
                for (wi, &vk) in w.iter_mut().zip(&basis[k]) {
                    *wi -= hk * vk;
                }
            }
            let hnext = norm2(&w);
            if !hnext.is_finite() {
                return Err(SparseError::NotFinite { context: "gmres arnoldi" });
            }
            h[i + 1] = hnext;
            // Previously computed rotations, applied to the new column.
            for k in 0..i {
                let t = cs[k] * h[k] + sn[k] * h[k + 1];
                h[k + 1] = -sn[k] * h[k] + cs[k] * h[k + 1];
                h[k] = t;
            }
            // New rotation zeroing the subdiagonal.
            let denom = (h[i] * h[i] + h[i + 1] * h[i + 1]).sqrt();
            if denom == 0.0 {
                // Exact breakdown of an already-zero column: the residual
                // estimate cannot improve; finish the cycle.
                inner = i;
                break;
            }
            cs[i] = h[i] / denom;
            sn[i] = h[i + 1] / denom;
            h[i] = denom;
            h[i + 1] = 0.0;
            g[i + 1] = -sn[i] * g[i];
            g[i] *= cs[i];
            r_cols.push(h);
            iterations += 1;
            inner = i + 1;
            let res_est = g[i + 1].abs();
            if res_est <= target {
                break;
            }
            if hnext == 0.0 {
                // Happy breakdown: the Krylov space is invariant; the
                // least-squares solution is exact.
                break;
            }
            let mut v = vec![0.0f64; n];
            for (vi, &wi) in v.iter_mut().zip(&w) {
                *vi = wi / hnext;
            }
            basis.push(v);
        }
        if inner == 0 {
            // Budget exhausted before a single step: nothing to update.
            continue;
        }
        // Back-substitute R·y = g over the `inner` completed columns.
        let mut y = vec![0.0f64; inner];
        for i in (0..inner).rev() {
            let mut s = g[i];
            for k in (i + 1)..inner {
                s -= r_cols[k][i] * y[k];
            }
            y[i] = s / r_cols[i][i];
        }
        // x ← x + M⁻¹·(V·y).
        w.fill(0.0);
        for (k, yk) in y.iter().enumerate() {
            for (wi, &vk) in w.iter_mut().zip(&basis[k]) {
                *wi += yk * vk;
            }
        }
        precond.apply(&w, &mut z, &mut scratch)?;
        for (xi, &zi) in x.iter_mut().zip(&z) {
            *xi += zi;
        }
    };
    Ok(GmresOutcome {
        converged,
        stagnated,
        iterations,
        restarts: cycles.saturating_sub(1),
        residual,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;
    use crate::csc::CscMatrix;
    use crate::ilu::Ilu0;
    use crate::operator::IdentityPrecond;

    fn solve(a: &CscMatrix, b: &[f64], opts: &GmresOptions) -> (Vec<f64>, GmresOutcome) {
        let mut x = vec![0.0; b.len()];
        let out = gmres(a, &IdentityPrecond::new(b.len()), b, &mut x, opts).unwrap();
        (x, out)
    }

    fn diag(values: &[f64]) -> CscMatrix {
        let mut t = CooMatrix::new(values.len(), values.len());
        for (i, &v) in values.iter().enumerate() {
            t.push(i, i, v).unwrap();
        }
        t.to_csc()
    }

    fn tridiag(n: usize, d: f64, o: f64) -> CscMatrix {
        let mut t = CooMatrix::new(n, n);
        for i in 0..n {
            t.push(i, i, d).unwrap();
        }
        for i in 0..n - 1 {
            t.push(i, i + 1, o).unwrap();
            t.push(i + 1, i, o).unwrap();
        }
        t.to_csc()
    }

    /// The cyclic shift: A·e_i = e_{i+1 mod n}. Unpreconditioned GMRES
    /// makes *zero* residual progress on b = e_0 until the full dimension —
    /// the canonical stagnation example.
    fn shift(n: usize) -> CscMatrix {
        let mut t = CooMatrix::new(n, n);
        for i in 0..n {
            t.push((i + 1) % n, i, 1.0).unwrap();
        }
        t.to_csc()
    }

    #[test]
    fn diagonal_system_converges() {
        let a = diag(&[2.0, 4.0, 8.0, 16.0]);
        let b = [2.0, 8.0, 8.0, 32.0];
        let (x, out) = solve(&a, &b, &GmresOptions::default());
        assert!(out.converged, "{out:?}");
        for (xi, want) in x.iter().zip(&[1.0, 2.0, 1.0, 2.0]) {
            assert!((xi - want).abs() < 1e-8);
        }
        // Four distinct eigenvalues: at most four iterations.
        assert!(out.iterations <= 4, "{out:?}");
    }

    #[test]
    fn banded_system_matches_direct_oracle() {
        let a = tridiag(20, 4.0, -1.0);
        let want: Vec<f64> = (0..20).map(|i| ((i * 7 % 5) as f64) - 2.0).collect();
        let b = a.matvec(&want).unwrap();
        let (x, out) = solve(&a, &b, &GmresOptions::default());
        assert!(out.converged, "{out:?}");
        for (xi, wi) in x.iter().zip(&want) {
            assert!((xi - wi).abs() < 1e-7, "{xi} vs {wi}");
        }
    }

    #[test]
    fn unsymmetric_system_converges() {
        // Unsymmetric, diagonally dominant 3x3.
        let mut t = CooMatrix::new(3, 3);
        for &(r, c, v) in
            &[(0, 0, 5.0), (0, 1, 1.0), (1, 0, -2.0), (1, 1, 6.0), (1, 2, 0.5), (2, 2, 3.0)]
        {
            t.push(r, c, v).unwrap();
        }
        let a = t.to_csc();
        let want = [1.0, -2.0, 3.0];
        let b = a.matvec(&want).unwrap();
        let (x, out) = solve(&a, &b, &GmresOptions::default());
        assert!(out.converged, "{out:?}");
        for (xi, wi) in x.iter().zip(&want) {
            assert!((xi - wi).abs() < 1e-8);
        }
    }

    #[test]
    fn restart_boundary_full_krylov_space_needed() {
        // The shift matrix needs exactly n Arnoldi steps: with restart = n
        // the solve lands exactly on the restart boundary and succeeds.
        let n = 8;
        let a = shift(n);
        let mut b = vec![0.0; n];
        b[0] = 1.0;
        let (x, out) = solve(&a, &b, &GmresOptions { restart: n, tol: 1e-12, max_iters: 4 * n });
        assert!(out.converged, "{out:?}");
        assert_eq!(out.iterations, n, "needs the full space, no more");
        // A·x = e_0 means x = e_{n-1}.
        assert!((x[n - 1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn stagnation_detected_when_restart_too_short() {
        // With restart < n on the shift matrix, every cycle reproduces the
        // same residual: the stagnation guard must fire rather than loop
        // until max_iters.
        let n = 8;
        let a = shift(n);
        let mut b = vec![0.0; n];
        b[0] = 1.0;
        let (x, out) = solve(&a, &b, &GmresOptions { restart: 4, tol: 1e-12, max_iters: 10_000 });
        assert!(!out.converged, "{out:?}");
        assert!(out.stagnated, "{out:?}");
        assert!(out.iterations < 100, "stagnation must cut the budget: {out:?}");
        assert!(x.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn near_singular_system_stays_finite() {
        // Numerically singular: one zero row/column pair. GMRES cannot
        // converge; it must report failure with finite state, not NaN.
        let a = diag(&[1.0, 0.0]);
        let b = [1.0, 1.0];
        let (x, out) = solve(&a, &b, &GmresOptions { restart: 2, tol: 1e-12, max_iters: 50 });
        assert!(!out.converged, "{out:?}");
        assert!(x.iter().all(|v| v.is_finite()));
        assert!(out.residual.is_finite());
    }

    #[test]
    fn max_iters_zero_is_an_immediate_unconverged_return() {
        let a = diag(&[2.0, 3.0]);
        let b = [1.0, 1.0];
        let (x, out) = solve(&a, &b, &GmresOptions { restart: 4, tol: 1e-10, max_iters: 0 });
        assert!(!out.converged);
        assert_eq!(out.iterations, 0);
        assert_eq!(x, vec![0.0, 0.0]);
    }

    #[test]
    fn zero_rhs_returns_zero_solution() {
        let a = diag(&[2.0, 3.0]);
        let mut x = vec![7.0, 9.0];
        let out =
            gmres(&a, &IdentityPrecond::new(2), &[0.0, 0.0], &mut x, &GmresOptions::default())
                .unwrap();
        assert!(out.converged);
        assert_eq!(x, vec![0.0, 0.0]);
    }

    #[test]
    fn ilu_preconditioned_tridiagonal_converges_in_one_iteration() {
        // ILU(0) is exact on a banded pattern, so the preconditioned
        // operator is the identity: one iteration.
        let n = 30;
        let a = tridiag(n, 4.0, -1.0);
        let ilu = Ilu0::factor(&a).unwrap();
        let want: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let b = a.matvec(&want).unwrap();
        let mut x = vec![0.0; n];
        let out = gmres(&a, &ilu, &b, &mut x, &GmresOptions::default()).unwrap();
        assert!(out.converged, "{out:?}");
        assert_eq!(out.iterations, 1, "{out:?}");
        for (xi, wi) in x.iter().zip(&want) {
            assert!((xi - wi).abs() < 1e-8);
        }
    }

    #[test]
    fn restarts_are_counted() {
        // A stiff SPD system with a tiny restart: convergence requires
        // several cycles, and the outcome reports them.
        let a = tridiag(40, 2.05, -1.0);
        let want: Vec<f64> = (0..40).map(|i| ((i % 7) as f64) - 3.0).collect();
        let b = a.matvec(&want).unwrap();
        let (x, out) = solve(&a, &b, &GmresOptions { restart: 8, tol: 1e-8, max_iters: 2000 });
        assert!(out.converged, "{out:?}");
        assert!(out.restarts > 0, "{out:?}");
        for (xi, wi) in x.iter().zip(&want) {
            assert!((xi - wi).abs() < 1e-4, "{xi} vs {wi}");
        }
    }

    #[test]
    fn dimension_mismatches_are_errors() {
        let a = diag(&[1.0, 2.0]);
        let mut x = vec![0.0; 2];
        assert!(
            gmres(&a, &IdentityPrecond::new(2), &[1.0], &mut x, &GmresOptions::default()).is_err()
        );
        let mut short = vec![0.0; 1];
        assert!(gmres(
            &a,
            &IdentityPrecond::new(2),
            &[1.0, 1.0],
            &mut short,
            &GmresOptions::default()
        )
        .is_err());
        assert!(gmres(&a, &IdentityPrecond::new(3), &[1.0, 1.0], &mut x, &GmresOptions::default())
            .is_err());
    }

    #[test]
    fn deterministic_bitwise_across_runs() {
        let a = tridiag(25, 3.0, -1.3);
        let want: Vec<f64> = (0..25).map(|i| ((i * 13 % 11) as f64) - 5.0).collect();
        let b = a.matvec(&want).unwrap();
        let opts = GmresOptions { restart: 6, tol: 1e-9, max_iters: 500 };
        let (x1, o1) = solve(&a, &b, &opts);
        let (x2, o2) = solve(&a, &b, &opts);
        assert_eq!(x1, x2, "gmres must be bit-deterministic");
        assert_eq!(o1, o2);
    }
}
