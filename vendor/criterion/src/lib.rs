//! Offline stand-in for the `criterion` crate covering the API surface
//! this workspace's benches use. Each benchmark closure runs once and the
//! wall time is printed — no warm-up, sampling, or statistics. When the
//! harness is invoked by `cargo test` (`--test` flag) every benchmark
//! still runs once, so benches stay compile- and smoke-checked.

use std::time::Instant;

/// Entry point handed to `criterion_group!` target functions.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), criterion: self }
    }
}

/// A named collection of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; sampling is always a single run.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark and prints its wall time.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { elapsed_ns: 0 };
        f(&mut b);
        if !self.criterion.test_mode {
            println!("{}/{}: {:.3} ms (single run)", self.name, id, b.elapsed_ns as f64 / 1e6);
        }
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Runs the benchmarked closure and records its wall time.
pub struct Bencher {
    elapsed_ns: u128,
}

impl Bencher {
    /// Times one invocation of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        let out = f();
        self.elapsed_ns = start.elapsed().as_nanos();
        drop(black_box(out));
    }
}

/// An identity function that hides its argument from the optimizer.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundles target functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `fn main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_each_bench_once() {
        let mut c = Criterion { test_mode: true };
        let mut runs = 0;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(10);
            g.bench_function("a", |b| b.iter(|| runs += 1));
            g.finish();
        }
        assert_eq!(runs, 1);
    }
}
