//! Prints the intra-step stamp-parallelism figure (serial vs graph-colored
//! parallel device evaluation) on the largest device-heavy generator
//! circuits and writes the series to `BENCH_stamp.json`.
//!
//! Usage: `cargo run --release -p wavepipe-bench --bin stamp [-- --small]
//! [--workers N]`

use wavepipe_bench::{fig_stamp_scaling, stamp_scaling_to_json, StampPoint};
use wavepipe_circuit::generators;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let small = args.iter().any(|a| a == "--small");
    let max_workers = args
        .iter()
        .position(|a| a == "--workers")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(4usize);

    // The MOS-heavy chains, at sizes beyond the table suite: per-point
    // parallelism targets circuits whose device evaluation dominates the
    // Newton cost, and the per-call dispatch overhead amortises with size.
    let subjects = if small {
        vec![generators::inverter_chain(40), generators::nand_chain(20)]
    } else {
        vec![generators::inverter_chain(120), generators::nand_chain(60)]
    };
    let mut groups: Vec<(String, Vec<StampPoint>)> = Vec::new();
    for b in &subjects {
        let (txt, points) = fig_stamp_scaling(b, max_workers);
        println!("{txt}");
        groups.push((b.name.clone(), points));
    }

    let refs: Vec<(&str, &[StampPoint])> =
        groups.iter().map(|(n, p)| (n.as_str(), p.as_slice())).collect();
    std::fs::write("BENCH_stamp.json", stamp_scaling_to_json(&refs))?;
    println!("wrote BENCH_stamp.json");
    Ok(())
}
