//! Monte Carlo timing analysis: simulate an inverter chain many times with
//! randomly perturbed device parameters (process spread) and report the
//! propagation-delay distribution — the bread-and-butter statistical flow
//! WavePipe's speedup multiplies across.
//!
//! The default path uses [`BatchSim`]: the chain is compiled **once** and
//! every sample reuses the frozen sparse pattern, slot table, stamp plan,
//! and symbolic ordering, with only the element values swapped per sample.
//! Pass `--independent` to also run the classic loop (rebuild + recompile +
//! solve per sample) and print the measured speedup ratio.
//!
//! Run with: `cargo run --release --example monte_carlo [-- <samples>] [--independent]`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;
use wavepipe::circuit::{Circuit, MosModel, Waveform};
use wavepipe::engine::{measure, run_transient, SimOptions, TransientResult};
use wavepipe::prelude::{BatchSim, ParamKind};

const VDD: f64 = 3.3;
const STAGES: usize = 8;
const TSTEP: f64 = 0.02e-9;
const TSTOP: f64 = 12e-9;

/// Builds the nominal chain (no spread); samples patch the values.
fn build_nominal() -> Result<Circuit, Box<dyn std::error::Error>> {
    let mut ckt = Circuit::new("mc inverter chain");
    let vdd = ckt.node("vdd");
    ckt.add_vsource("Vdd", vdd, Circuit::GROUND, Waveform::dc(VDD))?;
    let inp = ckt.node("in");
    ckt.add_vsource(
        "Vin",
        inp,
        Circuit::GROUND,
        Waveform::pulse(0.0, VDD, 1e-9, 0.15e-9, 0.15e-9, 10e-9, 0.0),
    )?;
    let mut prev = inp;
    for i in 0..STAGES {
        let out = ckt.node(&format!("s{i}"));
        let nmos = MosModel {
            kp: 1e-4,
            vt0: 0.7,
            w: 20e-6,
            l: 1e-6,
            cgs: 5e-15,
            cgd: 5e-15,
            ..MosModel::nmos()
        };
        let pmos = MosModel {
            kp: 5e-5,
            vt0: -0.7,
            w: 40e-6,
            l: 1e-6,
            cgs: 5e-15,
            cgd: 5e-15,
            ..MosModel::pmos()
        };
        ckt.add_mosfet(&format!("Mp{i}"), out, prev, vdd, pmos)?;
        ckt.add_mosfet(&format!("Mn{i}"), out, prev, Circuit::GROUND, nmos)?;
        ckt.add_capacitor(&format!("Cl{i}"), out, Circuit::GROUND, 20e-15)?;
        prev = out;
    }
    Ok(ckt)
}

/// One sample row: the jittered value for every registered column, in
/// column order. Shared by the batched and the independent path so both
/// simulate exactly the same process corners.
fn sample_rows(samples: usize, sigma: f64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(0xC1AC0);
    (0..samples)
        .map(|_| {
            let mut jitter = |nominal: f64| -> f64 {
                // Uniform +-3 sigma spread, cheap stand-in for a Gaussian.
                nominal * (1.0 + sigma * rng.gen_range(-3.0..3.0))
            };
            let mut row = Vec::with_capacity(STAGES * 5);
            for _ in 0..STAGES {
                row.push(jitter(1e-4)); // Mn kp
                row.push(jitter(0.7)); // Mn vt0
                row.push(jitter(5e-5)); // Mp kp
                row.push(-jitter(0.7)); // Mp vt0
                row.push(jitter(20e-15)); // Cl
            }
            row
        })
        .collect()
}

/// Patch one sample's values into a fresh copy of the nominal chain (the
/// independent path's equivalent of a batch instance).
fn patched(base: &Circuit, row: &[f64]) -> Circuit {
    let mut ckt = base.clone();
    for i in 0..STAGES {
        let v = &row[i * 5..i * 5 + 5];
        if let Some(wavepipe::circuit::Element::Mosfet { model, .. }) =
            ckt.element_mut(&format!("Mn{i}"))
        {
            model.kp = v[0];
            model.vt0 = v[1];
        }
        if let Some(wavepipe::circuit::Element::Mosfet { model, .. }) =
            ckt.element_mut(&format!("Mp{i}"))
        {
            model.kp = v[2];
            model.vt0 = v[3];
        }
        if let Some(wavepipe::circuit::Element::Capacitor { capacitance, .. }) =
            ckt.element_mut(&format!("Cl{i}"))
        {
            *capacitance = v[4];
        }
    }
    ckt
}

fn chain_delay(res: &TransientResult, k: usize) -> Result<f64, Box<dyn std::error::Error>> {
    let last = format!("s{}", STAGES - 1);
    let vmid = VDD / 2.0;
    let inp = res.unknown_of("in").expect("in");
    let out = res.unknown_of(&last).expect("last stage");
    measure::delay(
        &res.trace(inp),
        vmid,
        measure::Edge::Rising,
        &res.trace(out),
        vmid,
        measure::Edge::Rising, // even number of stages
        0,
    )
    .ok_or_else(|| format!("sample {k}: no output edge").into())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut samples: usize = 40;
    let mut independent = false;
    for arg in std::env::args().skip(1) {
        if arg == "--independent" {
            independent = true;
        } else {
            samples = arg.parse()?;
        }
    }

    let base = build_nominal()?;
    let rows = sample_rows(samples, 0.05);

    // Batched path: one compile, shared ordering, striped workers.
    let batch_start = Instant::now();
    let mut batch = BatchSim::compile(&base, TSTEP, TSTOP)?.with_threads(2);
    for i in 0..STAGES {
        batch.param(&format!("Mn{i}"), ParamKind::MosKp)?;
        batch.param(&format!("Mn{i}"), ParamKind::MosVt0)?;
        batch.param(&format!("Mp{i}"), ParamKind::MosKp)?;
        batch.param(&format!("Mp{i}"), ParamKind::MosVt0)?;
        batch.param(&format!("Cl{i}"), ParamKind::Capacitance)?;
    }
    for row in &rows {
        batch.add_instance(row)?;
    }
    let run = batch.run()?;
    let batch_wall = batch_start.elapsed();

    let mut delays = Vec::with_capacity(samples);
    for (k, res) in run.results().iter().enumerate() {
        delays.push(chain_delay(res, k)?);
    }

    delays.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let mean = delays.iter().sum::<f64>() / delays.len() as f64;
    let var = delays.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / delays.len() as f64;
    let pct = |p: f64| delays[((delays.len() - 1) as f64 * p) as usize];
    println!("{samples} Monte Carlo samples of a {STAGES}-stage chain (5% parameter spread)");
    println!("chain delay: mean {:.1} ps, sigma {:.1} ps", mean * 1e12, var.sqrt() * 1e12);
    println!(
        "             min {:.1} / p50 {:.1} / p95 {:.1} / max {:.1} ps",
        delays[0] * 1e12,
        pct(0.5) * 1e12,
        pct(0.95) * 1e12,
        delays[delays.len() - 1] * 1e12
    );
    println!(
        "batched: {} workers, {:.1} ms wall ({:.2} ms shared prep)",
        run.workers(),
        batch_wall.as_secs_f64() * 1e3,
        run.prep_ns() as f64 / 1e6,
    );
    assert!(var.sqrt() > 0.0, "spread must show up in the delays");

    if independent {
        // Classic loop: rebuild, recompile, and solve every sample from
        // scratch — what the batch engine amortises away.
        let opts = SimOptions::default();
        let indep_start = Instant::now();
        let mut check = Vec::with_capacity(samples);
        for (k, row) in rows.iter().enumerate() {
            let res = run_transient(&patched(&base, row), TSTEP, TSTOP, &opts)?;
            check.push(chain_delay(&res, k)?);
        }
        let indep_wall = indep_start.elapsed();
        check.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        assert_eq!(check, delays, "batched and independent runs must agree exactly");
        println!(
            "independent: {:.1} ms wall -> measured speedup {:.2}x",
            indep_wall.as_secs_f64() * 1e3,
            indep_wall.as_secs_f64() / batch_wall.as_secs_f64(),
        );
    }
    Ok(())
}
