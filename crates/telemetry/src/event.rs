//! The typed event taxonomy every instrumented layer emits.

/// Why a speculative or leading solve was thrown away.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiscardReason {
    /// The speculative Newton solve itself did not converge.
    Unconverged,
    /// The predicted history was too far from the truth to warm-start from.
    PredictionFar,
    /// The warm-start refinement did not converge within its iteration budget.
    RefineBudget,
    /// The refined point failed the LTE accept test.
    LteRejected,
    /// The refined point failed the Newton/finiteness commit test.
    NewtonRejected,
    /// An earlier link of the speculative chain broke, invalidating this one.
    ChainBroken,
    /// The worker holding the solve died; the task's result never arrived.
    WorkerLost,
}

impl DiscardReason {
    /// Stable machine-readable name.
    pub fn name(self) -> &'static str {
        match self {
            DiscardReason::Unconverged => "unconverged",
            DiscardReason::PredictionFar => "prediction_far",
            DiscardReason::RefineBudget => "refine_budget",
            DiscardReason::LteRejected => "lte_rejected",
            DiscardReason::NewtonRejected => "newton_rejected",
            DiscardReason::ChainBroken => "chain_broken",
            DiscardReason::WorkerLost => "worker_lost",
        }
    }

    /// Inverse of [`DiscardReason::name`].
    pub fn from_name(s: &str) -> Option<Self> {
        Some(match s {
            "unconverged" => DiscardReason::Unconverged,
            "prediction_far" => DiscardReason::PredictionFar,
            "refine_budget" => DiscardReason::RefineBudget,
            "lte_rejected" => DiscardReason::LteRejected,
            "newton_rejected" => DiscardReason::NewtonRejected,
            "chain_broken" => DiscardReason::ChainBroken,
            "worker_lost" => DiscardReason::WorkerLost,
            _ => return None,
        })
    }
}

/// What happened. Every variant is cheap to construct (`Copy`, no heap).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A pipelined round began; `width` concurrent solves were launched.
    RoundStart {
        /// Number of concurrent point-solve tasks in the round.
        width: u32,
    },
    /// The round (solves + commits) finished with `committed` accepted points.
    RoundEnd {
        /// Points committed by the round.
        committed: u32,
    },
    /// A point-solve started on some lane; `h` is the integration stride.
    SolveStart {
        /// Integration stride of the attempt.
        h: f64,
    },
    /// The point-solve on this lane finished.
    SolveEnd {
        /// Newton iterations spent.
        iterations: u32,
        /// Whether Newton converged.
        converged: bool,
    },
    /// One Newton iteration (stamp + factor + solve) completed.
    NewtonIter {
        /// 1-based iteration index within the solve.
        iteration: u32,
    },
    /// A numeric factorization pass of any kind (fresh pivot search or
    /// frozen-pivot refactorization).
    Factorization,
    /// A fast refactorization on the frozen pivot order (a subset of the
    /// [`EventKind::Factorization`] passes — both events are emitted).
    Refactorization,
    /// A chord/modified-Newton iteration reused the previous LU factors
    /// without any numeric factorization pass.
    JacobianReuse,
    /// One stamp pass replayed `devices` nonlinear devices from their bypass
    /// caches instead of re-evaluating the models.
    BypassedDevices {
        /// Devices bypassed in this stamp pass.
        devices: u32,
    },
    /// The assembled linear matrix was replayed from the step-size-keyed
    /// companion cache instead of being re-stamped.
    CompanionHit,
    /// The LTE test rejected a candidate point.
    LteReject {
        /// Weighted error ratio (> 1).
        ratio: f64,
        /// Suggested retry stride.
        h_retry: f64,
    },
    /// The LTE test accepted a candidate and proposed the next step.
    StepSizeChosen {
        /// Proposed next stride.
        h: f64,
        /// Weighted error ratio (<= 1).
        ratio: f64,
    },
    /// A candidate point was committed to the waveform.
    PointAccepted {
        /// Stride the point was integrated with.
        h: f64,
    },
    /// A backward-pipelined lead point survived its commit tests.
    LeadAccepted,
    /// A backward-pipelined lead point was discarded.
    LeadDiscarded {
        /// Why the lead was thrown away.
        reason: DiscardReason,
    },
    /// A forward-pipelined speculative point was refined and committed.
    SpeculationAccepted,
    /// A forward-pipelined speculative point was discarded.
    SpeculationDiscarded {
        /// Why the speculation was thrown away.
        reason: DiscardReason,
    },
    /// The adaptive scheduler picked the scheme for the next round.
    AdaptiveChoice {
        /// `true` = forward pipelining, `false` = backward.
        forward: bool,
    },
    /// The parallel stamp path began accumulating one color group.
    StampColorStart {
        /// 0-based stamp color (conflict-free device group).
        color: u32,
    },
    /// The parallel stamp path finished accumulating one color group.
    StampColorEnd {
        /// 0-based stamp color (conflict-free device group).
        color: u32,
        /// Devices in the group.
        devices: u32,
    },
    /// A worker thread (pool lane or stamp worker) panicked or disappeared
    /// and was retired from service.
    WorkerLost {
        /// Lane the lost worker served.
        lane: u32,
    },
    /// A parallel component degraded itself to its serial path (a lane pool
    /// shrinking to the coordinating thread, or a stamp executor switching
    /// to inline evaluation).
    FallbackSerial,
    /// The wall-clock budget expired; the run is stopping at the accepted
    /// prefix.
    DeadlineHit,
    /// Newton failed at a timepoint below the step floor; the convergence
    /// recovery ladder engaged instead of aborting the run.
    RecoveryAttempt {
        /// The stride of the failing attempt.
        h: f64,
    },
    /// One rung of the recovery ladder finished.
    RecoveryRung {
        /// 1-based rung index (1 = cache rollback, 2 = deep step cut,
        /// 3 = local gmin ramp).
        rung: u32,
        /// Whether the rung produced a converged point.
        success: bool,
    },
    /// The recovery ladder invalidated the solver caches (bypass masks,
    /// chord LU key, companion cache) suspecting a poisoned entry.
    CachePoisonRollback,
    /// One linear solve went through the iterative (Krylov) solver path.
    KrylovSolve {
        /// GMRES iterations (Arnoldi steps) spent on the solve.
        iterations: u32,
        /// Restart cycles beyond the first.
        restarts: u32,
        /// Preconditioner (re)builds charged to the solve.
        precond_refreshes: u32,
        /// Whether the solve completed on the direct-LU fallback.
        fallback: bool,
    },
}

impl EventKind {
    /// Stable machine-readable name of the variant.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::RoundStart { .. } => "round_start",
            EventKind::RoundEnd { .. } => "round_end",
            EventKind::SolveStart { .. } => "solve_start",
            EventKind::SolveEnd { .. } => "solve_end",
            EventKind::NewtonIter { .. } => "newton_iter",
            EventKind::Factorization => "factorization",
            EventKind::Refactorization => "refactorization",
            EventKind::JacobianReuse => "jacobian_reuse",
            EventKind::BypassedDevices { .. } => "bypassed_devices",
            EventKind::CompanionHit => "companion_hit",
            EventKind::LteReject { .. } => "lte_reject",
            EventKind::StepSizeChosen { .. } => "step_size_chosen",
            EventKind::PointAccepted { .. } => "point_accepted",
            EventKind::LeadAccepted => "lead_accepted",
            EventKind::LeadDiscarded { .. } => "lead_discarded",
            EventKind::SpeculationAccepted => "speculation_accepted",
            EventKind::SpeculationDiscarded { .. } => "speculation_discarded",
            EventKind::AdaptiveChoice { .. } => "adaptive_choice",
            EventKind::StampColorStart { .. } => "stamp_color_start",
            EventKind::StampColorEnd { .. } => "stamp_color_end",
            EventKind::WorkerLost { .. } => "worker_lost",
            EventKind::FallbackSerial => "fallback_serial",
            EventKind::DeadlineHit => "deadline_hit",
            EventKind::RecoveryAttempt { .. } => "recovery_attempt",
            EventKind::RecoveryRung { .. } => "recovery_rung",
            EventKind::CachePoisonRollback => "cache_poison_rollback",
            EventKind::KrylovSolve { .. } => "krylov_solve",
        }
    }
}

/// One recorded telemetry event.
///
/// `ts_ns` is nanoseconds since the recording probe was created (a per-run
/// epoch), `round` the 1-based pipelined round it belongs to (0 before the
/// first round), `lane` the logical solver lane (0 = the coordinating /
/// serial thread, 1.. = pool workers), and `t_sim` the simulated time the
/// event refers to.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Nanoseconds since the probe's epoch.
    pub ts_ns: u64,
    /// Pipelined round id (1-based; 0 = pre-round work such as the DC solve).
    pub round: u64,
    /// Logical solver lane.
    pub lane: u32,
    /// Simulated time the event refers to, seconds.
    pub t_sim: f64,
    /// What happened.
    pub kind: EventKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable_and_distinct() {
        let kinds = [
            EventKind::RoundStart { width: 1 },
            EventKind::RoundEnd { committed: 0 },
            EventKind::SolveStart { h: 1.0 },
            EventKind::SolveEnd { iterations: 2, converged: true },
            EventKind::NewtonIter { iteration: 1 },
            EventKind::Factorization,
            EventKind::Refactorization,
            EventKind::JacobianReuse,
            EventKind::BypassedDevices { devices: 3 },
            EventKind::CompanionHit,
            EventKind::LteReject { ratio: 2.0, h_retry: 0.5 },
            EventKind::StepSizeChosen { h: 1.0, ratio: 0.5 },
            EventKind::PointAccepted { h: 1.0 },
            EventKind::LeadAccepted,
            EventKind::LeadDiscarded { reason: DiscardReason::LteRejected },
            EventKind::SpeculationAccepted,
            EventKind::SpeculationDiscarded { reason: DiscardReason::PredictionFar },
            EventKind::AdaptiveChoice { forward: true },
            EventKind::StampColorStart { color: 0 },
            EventKind::StampColorEnd { color: 0, devices: 4 },
            EventKind::WorkerLost { lane: 1 },
            EventKind::FallbackSerial,
            EventKind::DeadlineHit,
            EventKind::RecoveryAttempt { h: 1e-12 },
            EventKind::RecoveryRung { rung: 1, success: false },
            EventKind::CachePoisonRollback,
            EventKind::KrylovSolve {
                iterations: 4,
                restarts: 0,
                precond_refreshes: 1,
                fallback: false,
            },
        ];
        let names: std::collections::HashSet<&str> = kinds.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), kinds.len());
    }

    #[test]
    fn discard_reason_round_trips() {
        for r in [
            DiscardReason::Unconverged,
            DiscardReason::PredictionFar,
            DiscardReason::RefineBudget,
            DiscardReason::LteRejected,
            DiscardReason::NewtonRejected,
            DiscardReason::ChainBroken,
            DiscardReason::WorkerLost,
        ] {
            assert_eq!(DiscardReason::from_name(r.name()), Some(r));
        }
        assert_eq!(DiscardReason::from_name("nope"), None);
    }
}
