//! Fixed-bucket histograms for the telemetry summaries.

use std::fmt;

/// A histogram over explicit ascending bucket boundaries.
///
/// A value `v` lands in bucket `i` when `bounds[i-1] <= v < bounds[i]`
/// (bucket 0 is the underflow `v < bounds[0]`, the last bucket the overflow
/// `v >= bounds[last]`). Exact min/max/mean are tracked separately, so the
/// bucketing only affects the shape display and percentile estimates.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// A histogram with the given ascending boundaries (`counts.len() ==
    /// bounds.len() + 1`).
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly ascending.
    pub fn with_bounds(bounds: Vec<f64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one boundary");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram boundaries must be strictly ascending"
        );
        let n = bounds.len() + 1;
        Histogram {
            bounds,
            counts: vec![0; n],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// `n` equal-width buckets between `lo` and `hi` (plus under/overflow).
    pub fn linear(lo: f64, hi: f64, n: usize) -> Self {
        assert!(n >= 1 && hi > lo);
        let w = (hi - lo) / n as f64;
        Self::with_bounds((0..=n).map(|i| lo + w * i as f64).collect())
    }

    /// Logarithmic buckets spanning `10^lo_exp .. 10^hi_exp`, `per_decade`
    /// buckets per decade. Suited to step-size distributions.
    pub fn log10(lo_exp: i32, hi_exp: i32, per_decade: usize) -> Self {
        assert!(hi_exp > lo_exp && per_decade >= 1);
        let steps = (hi_exp - lo_exp) as usize * per_decade;
        let bounds =
            (0..=steps).map(|i| 10f64.powf(lo_exp as f64 + i as f64 / per_decade as f64)).collect();
        Self::with_bounds(bounds)
    }

    /// Unit-width integer buckets `1, 2, ..., max` (plus overflow). Suited
    /// to Newton-iteration counts.
    pub fn integer(max: usize) -> Self {
        Self::with_bounds((1..=max + 1).map(|i| i as f64).collect())
    }

    /// Records one observation.
    pub fn observe(&mut self, v: f64) {
        if v.is_nan() {
            return;
        }
        let idx = self.bounds.partition_point(|&b| b <= v);
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean observation (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Approximate `q`-quantile (`0 <= q <= 1`) from the bucket counts: the
    /// lower boundary of the bucket containing the quantile rank (clamped to
    /// the observed min/max for the open-ended buckets).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let lo = if i == 0 { self.min } else { self.bounds[i - 1] };
                return Some(lo.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Per-bucket `(lower_bound, count)` pairs for non-empty buckets; the
    /// underflow bucket reports the observed minimum as its bound.
    pub fn nonzero_buckets(&self) -> Vec<(f64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| {
                let lo = if i == 0 { self.min } else { self.bounds[i - 1] };
                (lo, c)
            })
            .collect()
    }
}

impl fmt::Display for Histogram {
    /// Compact one-bucket-per-line rendering with bar lengths normalised to
    /// the fullest bucket.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.count == 0 {
            return write!(f, "(empty)");
        }
        let peak = *self.counts.iter().max().expect("non-empty counts") as f64;
        for (lo, c) in self.nonzero_buckets() {
            let bar = "#".repeat(((c as f64 / peak) * 40.0).ceil() as usize);
            writeln!(f, "  {lo:>12.3e} | {c:>8} {bar}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observations_land_in_the_right_buckets() {
        let mut h = Histogram::integer(4); // bounds 1,2,3,4,5
        for v in [0.5, 1.0, 1.9, 2.0, 4.0, 10.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        // under(=<1): 0.5 | [1,2): 1.0,1.9 | [2,3): 2.0 | [4,5): 4.0 | over: 10
        assert_eq!(h.nonzero_buckets(), vec![(0.5, 1), (1.0, 2), (2.0, 1), (4.0, 1), (5.0, 1),]);
        assert_eq!(h.min(), Some(0.5));
        assert_eq!(h.max(), Some(10.0));
    }

    #[test]
    fn log_buckets_cover_decades() {
        let mut h = Histogram::log10(-12, -6, 2);
        h.observe(1e-9);
        h.observe(3e-9);
        h.observe(1e-3); // overflow
        assert_eq!(h.count(), 3);
        assert!(h.mean().unwrap() > 0.0);
    }

    #[test]
    fn quantiles_are_monotone_and_bounded() {
        let mut h = Histogram::linear(0.0, 10.0, 10);
        for i in 0..100 {
            h.observe(i as f64 / 10.0);
        }
        let q50 = h.quantile(0.5).unwrap();
        let q90 = h.quantile(0.9).unwrap();
        assert!(q50 <= q90);
        assert!(q90 <= h.max().unwrap());
        assert!(h.quantile(0.0).unwrap() >= h.min().unwrap());
    }

    #[test]
    fn empty_histogram_degrades() {
        let h = Histogram::integer(3);
        assert_eq!(h.count(), 0);
        assert!(h.mean().is_none());
        assert!(h.quantile(0.5).is_none());
        assert_eq!(format!("{h}"), "(empty)");
    }

    #[test]
    fn nan_is_ignored() {
        let mut h = Histogram::linear(0.0, 1.0, 2);
        h.observe(f64::NAN);
        assert_eq!(h.count(), 0);
    }
}
