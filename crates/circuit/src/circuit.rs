//! The circuit netlist container and its builder API.

use crate::element::{BjtModel, DiodeModel, Element, MosModel, Node};
use crate::waveform::Waveform;
use std::collections::HashMap;
use std::fmt;

/// Error produced while building or validating a [`Circuit`].
#[derive(Debug, Clone, PartialEq)]
pub enum CircuitError {
    /// An element value (R, C, L) must be positive and finite.
    InvalidValue {
        /// Element instance name.
        element: String,
        /// The offending value.
        value: f64,
    },
    /// Two elements share the same instance name.
    DuplicateName {
        /// The duplicated name.
        name: String,
    },
    /// A node has no conductive path to ground (the MNA matrix would be
    /// singular).
    FloatingNode {
        /// Name of the unreachable node.
        node: String,
    },
    /// A loop of ideal voltage sources (and/or inductors) short-circuits the
    /// MNA formulation.
    VoltageLoop {
        /// Name of one element in the loop.
        element: String,
    },
    /// The circuit has no elements.
    Empty,
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::InvalidValue { element, value } => {
                write!(f, "element {element} has invalid value {value}")
            }
            CircuitError::DuplicateName { name } => {
                write!(f, "duplicate element name {name}")
            }
            CircuitError::FloatingNode { node } => {
                write!(f, "node {node} has no path to ground")
            }
            CircuitError::VoltageLoop { element } => {
                write!(f, "loop of ideal voltage sources involving {element}")
            }
            CircuitError::Empty => write!(f, "circuit has no elements"),
        }
    }
}

impl std::error::Error for CircuitError {}

/// A circuit netlist: a set of named nodes plus a list of [`Element`]s.
///
/// Build programmatically with the `add_*` methods, or parse a SPICE-style
/// deck with [`crate::parse_netlist`].
///
/// ```
/// use wavepipe_circuit::{Circuit, Waveform};
///
/// # fn main() -> Result<(), wavepipe_circuit::CircuitError> {
/// let mut ckt = Circuit::new("rc lowpass");
/// let inp = ckt.node("in");
/// let out = ckt.node("out");
/// ckt.add_vsource("V1", inp, Circuit::GROUND, Waveform::pulse(0.0, 1.0, 0.0, 1e-9, 1e-9, 1e-6, 0.0))?;
/// ckt.add_resistor("R1", inp, out, 1e3)?;
/// ckt.add_capacitor("C1", out, Circuit::GROUND, 1e-9)?;
/// ckt.validate()?;
/// assert_eq!(ckt.node_count(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Circuit {
    title: String,
    /// node name -> id (ground is implicit id 0).
    node_names: HashMap<String, Node>,
    /// id -> name, index 0 is ground.
    node_list: Vec<String>,
    elements: Vec<Element>,
}

impl Circuit {
    /// The ground node, shared by every circuit.
    pub const GROUND: Node = Node::GROUND;

    /// Creates an empty circuit with the given title.
    pub fn new(title: impl Into<String>) -> Self {
        Circuit {
            title: title.into(),
            node_names: HashMap::new(),
            node_list: vec!["0".to_string()],
            elements: Vec::new(),
        }
    }

    /// The circuit title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Returns the node with the given name, creating it if necessary.
    /// The names `"0"`, `"gnd"` and `"GND"` map to ground.
    pub fn node(&mut self, name: &str) -> Node {
        if name == "0" || name.eq_ignore_ascii_case("gnd") {
            return Node::GROUND;
        }
        if let Some(&n) = self.node_names.get(name) {
            return n;
        }
        let id = Node(self.node_list.len());
        self.node_list.push(name.to_string());
        self.node_names.insert(name.to_string(), id);
        id
    }

    /// Looks up an existing node by name without creating it.
    pub fn find_node(&self, name: &str) -> Option<Node> {
        if name == "0" || name.eq_ignore_ascii_case("gnd") {
            return Some(Node::GROUND);
        }
        self.node_names.get(name).copied()
    }

    /// Name of a node id.
    ///
    /// # Panics
    ///
    /// Panics if the node does not belong to this circuit.
    pub fn node_name(&self, node: Node) -> &str {
        &self.node_list[node.index()]
    }

    /// Number of signal (non-ground) nodes.
    pub fn node_count(&self) -> usize {
        self.node_list.len() - 1
    }

    /// Names of the signal nodes in id order (node id 1, 2, ...), i.e. the
    /// order in which MNA assigns voltage unknowns.
    pub fn signal_node_names(&self) -> impl Iterator<Item = &str> {
        self.node_list[1..].iter().map(String::as_str)
    }

    /// The elements in insertion order.
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// The named element, if present. The lookup is case-insensitive,
    /// matching netlist conventions.
    pub fn element(&self, name: &str) -> Option<&Element> {
        self.elements.iter().find(|e| e.name().eq_ignore_ascii_case(name))
    }

    /// Mutable access to the named element (case-insensitive), for patching
    /// parameter values between compiles — the per-instance edit a batched
    /// sweep applies. Structure (terminals, element kind) is fixed by the
    /// element's variant; only its value fields can change through this.
    pub fn element_mut(&mut self, name: &str) -> Option<&mut Element> {
        self.elements.iter_mut().find(|e| e.name().eq_ignore_ascii_case(name))
    }

    /// Number of elements.
    pub fn element_count(&self) -> usize {
        self.elements.len()
    }

    /// Number of elements that are nonlinear devices.
    pub fn nonlinear_count(&self) -> usize {
        self.elements.iter().filter(|e| e.is_nonlinear()).count()
    }

    /// Number of MNA unknowns: signal nodes + branch currents.
    pub fn unknown_count(&self) -> usize {
        self.node_count() + self.elements.iter().filter(|e| e.has_branch_current()).count()
    }

    fn check_name(&self, name: &str) -> Result<(), CircuitError> {
        if self.elements.iter().any(|e| e.name() == name) {
            return Err(CircuitError::DuplicateName { name: name.to_string() });
        }
        Ok(())
    }

    fn check_positive(name: &str, value: f64) -> Result<(), CircuitError> {
        if !(value.is_finite() && value > 0.0) {
            return Err(CircuitError::InvalidValue { element: name.to_string(), value });
        }
        Ok(())
    }

    /// Adds a resistor.
    ///
    /// # Errors
    ///
    /// [`CircuitError::InvalidValue`] unless `0 < r < inf`;
    /// [`CircuitError::DuplicateName`] if the name is taken.
    pub fn add_resistor(
        &mut self,
        name: &str,
        p: Node,
        n: Node,
        r: f64,
    ) -> Result<(), CircuitError> {
        self.check_name(name)?;
        Self::check_positive(name, r)?;
        self.elements.push(Element::Resistor { name: name.to_string(), p, n, resistance: r });
        Ok(())
    }

    /// Adds a capacitor.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Circuit::add_resistor`].
    pub fn add_capacitor(
        &mut self,
        name: &str,
        p: Node,
        n: Node,
        c: f64,
    ) -> Result<(), CircuitError> {
        self.check_name(name)?;
        Self::check_positive(name, c)?;
        self.elements.push(Element::Capacitor {
            name: name.to_string(),
            p,
            n,
            capacitance: c,
            initial_voltage: None,
        });
        Ok(())
    }

    /// Adds a capacitor with an initial-condition voltage.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Circuit::add_resistor`].
    pub fn add_capacitor_ic(
        &mut self,
        name: &str,
        p: Node,
        n: Node,
        c: f64,
        v0: f64,
    ) -> Result<(), CircuitError> {
        self.check_name(name)?;
        Self::check_positive(name, c)?;
        self.elements.push(Element::Capacitor {
            name: name.to_string(),
            p,
            n,
            capacitance: c,
            initial_voltage: Some(v0),
        });
        Ok(())
    }

    /// Adds an inductor.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Circuit::add_resistor`].
    pub fn add_inductor(
        &mut self,
        name: &str,
        p: Node,
        n: Node,
        l: f64,
    ) -> Result<(), CircuitError> {
        self.check_name(name)?;
        Self::check_positive(name, l)?;
        self.elements.push(Element::Inductor {
            name: name.to_string(),
            p,
            n,
            inductance: l,
            initial_current: None,
        });
        Ok(())
    }

    /// Adds an independent voltage source.
    ///
    /// # Errors
    ///
    /// [`CircuitError::DuplicateName`] if the name is taken.
    pub fn add_vsource(
        &mut self,
        name: &str,
        p: Node,
        n: Node,
        waveform: Waveform,
    ) -> Result<(), CircuitError> {
        self.check_name(name)?;
        self.elements.push(Element::VoltageSource {
            name: name.to_string(),
            p,
            n,
            waveform,
            ac_magnitude: 0.0,
        });
        Ok(())
    }

    /// Adds an independent voltage source with a small-signal AC magnitude
    /// (used by [`AC analysis`](https://en.wikipedia.org/wiki/Small-signal_model)).
    ///
    /// # Errors
    ///
    /// [`CircuitError::DuplicateName`] if the name is taken.
    pub fn add_vsource_ac(
        &mut self,
        name: &str,
        p: Node,
        n: Node,
        waveform: Waveform,
        ac_magnitude: f64,
    ) -> Result<(), CircuitError> {
        self.check_name(name)?;
        self.elements.push(Element::VoltageSource {
            name: name.to_string(),
            p,
            n,
            waveform,
            ac_magnitude,
        });
        Ok(())
    }

    /// Adds an independent current source (current pulled from `p` into `n`).
    ///
    /// # Errors
    ///
    /// [`CircuitError::DuplicateName`] if the name is taken.
    pub fn add_isource(
        &mut self,
        name: &str,
        p: Node,
        n: Node,
        waveform: Waveform,
    ) -> Result<(), CircuitError> {
        self.check_name(name)?;
        self.elements.push(Element::CurrentSource {
            name: name.to_string(),
            p,
            n,
            waveform,
            ac_magnitude: 0.0,
        });
        Ok(())
    }

    /// Adds an independent current source with a small-signal AC magnitude.
    ///
    /// # Errors
    ///
    /// [`CircuitError::DuplicateName`] if the name is taken.
    pub fn add_isource_ac(
        &mut self,
        name: &str,
        p: Node,
        n: Node,
        waveform: Waveform,
        ac_magnitude: f64,
    ) -> Result<(), CircuitError> {
        self.check_name(name)?;
        self.elements.push(Element::CurrentSource {
            name: name.to_string(),
            p,
            n,
            waveform,
            ac_magnitude,
        });
        Ok(())
    }

    /// Adds a diode (anode `p`, cathode `n`).
    ///
    /// # Errors
    ///
    /// [`CircuitError::DuplicateName`] if the name is taken.
    pub fn add_diode(
        &mut self,
        name: &str,
        p: Node,
        n: Node,
        model: DiodeModel,
    ) -> Result<(), CircuitError> {
        self.check_name(name)?;
        self.elements.push(Element::Diode { name: name.to_string(), p, n, model });
        Ok(())
    }

    /// Adds a level-1 MOSFET (drain, gate, source) with the bulk tied to
    /// the source.
    ///
    /// # Errors
    ///
    /// [`CircuitError::DuplicateName`] if the name is taken.
    pub fn add_mosfet(
        &mut self,
        name: &str,
        d: Node,
        g: Node,
        s: Node,
        model: MosModel,
    ) -> Result<(), CircuitError> {
        self.add_mosfet4(name, d, g, s, s, model)
    }

    /// Adds a level-1 MOSFET with an explicit bulk terminal (body effect
    /// active when `model.gamma > 0` and the bulk is not at source
    /// potential).
    ///
    /// # Errors
    ///
    /// [`CircuitError::DuplicateName`] if the name is taken.
    pub fn add_mosfet4(
        &mut self,
        name: &str,
        d: Node,
        g: Node,
        s: Node,
        b: Node,
        model: MosModel,
    ) -> Result<(), CircuitError> {
        self.check_name(name)?;
        self.elements.push(Element::Mosfet { name: name.to_string(), d, g, s, b, model });
        Ok(())
    }

    /// Adds an Ebers–Moll BJT (collector, base, emitter).
    ///
    /// # Errors
    ///
    /// [`CircuitError::DuplicateName`] if the name is taken.
    pub fn add_bjt(
        &mut self,
        name: &str,
        c: Node,
        b: Node,
        e: Node,
        model: BjtModel,
    ) -> Result<(), CircuitError> {
        self.check_name(name)?;
        self.elements.push(Element::Bjt { name: name.to_string(), c, b, e, model });
        Ok(())
    }

    /// Adds a voltage-controlled voltage source.
    ///
    /// # Errors
    ///
    /// [`CircuitError::DuplicateName`] if the name is taken.
    pub fn add_vcvs(
        &mut self,
        name: &str,
        p: Node,
        n: Node,
        cp: Node,
        cn: Node,
        gain: f64,
    ) -> Result<(), CircuitError> {
        self.check_name(name)?;
        self.elements.push(Element::Vcvs { name: name.to_string(), p, n, cp, cn, gain });
        Ok(())
    }

    /// Adds a voltage-controlled current source.
    ///
    /// # Errors
    ///
    /// [`CircuitError::DuplicateName`] if the name is taken.
    pub fn add_vccs(
        &mut self,
        name: &str,
        p: Node,
        n: Node,
        cp: Node,
        cn: Node,
        gm: f64,
    ) -> Result<(), CircuitError> {
        self.check_name(name)?;
        self.elements.push(Element::Vccs { name: name.to_string(), p, n, cp, cn, gm });
        Ok(())
    }

    /// Validates the netlist: non-empty, and every node reachable from
    /// ground through element connectivity.
    ///
    /// # Errors
    ///
    /// * [`CircuitError::Empty`] for an element-free circuit.
    /// * [`CircuitError::FloatingNode`] if some node is disconnected from
    ///   ground.
    pub fn validate(&self) -> Result<(), CircuitError> {
        if self.elements.is_empty() {
            return Err(CircuitError::Empty);
        }
        // Union-find over nodes through element connectivity.
        let n = self.node_list.len();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for e in &self.elements {
            let nodes = e.nodes();
            // Controlled sources: controlling pins sense voltage but conduct
            // no current; only output pins (first two) bond for connectivity.
            let bonded: &[Node] = match e {
                Element::Vcvs { .. } | Element::Vccs { .. } => &nodes[..2],
                _ => &nodes,
            };
            for w in bonded.windows(2) {
                let a = find(&mut parent, w[0].index());
                let b = find(&mut parent, w[1].index());
                if a != b {
                    parent[a] = b;
                }
            }
        }
        let groot = find(&mut parent, 0);
        for id in 1..n {
            if find(&mut parent, id) != groot {
                return Err(CircuitError::FloatingNode { node: self.node_list[id].clone() });
            }
        }
        Ok(())
    }

    /// A one-line summary for reports: title, node/element/nonlinear counts.
    pub fn summary(&self) -> String {
        format!(
            "{}: {} nodes, {} unknowns, {} elements ({} nonlinear)",
            self.title,
            self.node_count(),
            self.unknown_count(),
            self.element_count(),
            self.nonlinear_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rc() -> Circuit {
        let mut ckt = Circuit::new("rc");
        let a = ckt.node("a");
        ckt.add_vsource("V1", a, Circuit::GROUND, Waveform::dc(1.0)).unwrap();
        let b = ckt.node("b");
        ckt.add_resistor("R1", a, b, 1e3).unwrap();
        ckt.add_capacitor("C1", b, Circuit::GROUND, 1e-9).unwrap();
        ckt
    }

    #[test]
    fn node_interning_is_stable() {
        let mut ckt = Circuit::new("t");
        let a1 = ckt.node("a");
        let a2 = ckt.node("a");
        assert_eq!(a1, a2);
        assert_eq!(ckt.node("0"), Circuit::GROUND);
        assert_eq!(ckt.node("GND"), Circuit::GROUND);
        assert_eq!(ckt.node_count(), 1);
    }

    #[test]
    fn find_node_does_not_create() {
        let mut ckt = Circuit::new("t");
        assert!(ckt.find_node("x").is_none());
        let x = ckt.node("x");
        assert_eq!(ckt.find_node("x"), Some(x));
        assert_eq!(ckt.find_node("gnd"), Some(Circuit::GROUND));
    }

    #[test]
    fn unknown_count_includes_branches() {
        let ckt = rc();
        // 2 nodes + 1 vsource branch.
        assert_eq!(ckt.unknown_count(), 3);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut ckt = rc();
        let a = ckt.node("a");
        assert!(matches!(
            ckt.add_resistor("R1", a, Circuit::GROUND, 1.0),
            Err(CircuitError::DuplicateName { .. })
        ));
    }

    #[test]
    fn invalid_values_rejected() {
        let mut ckt = Circuit::new("t");
        let a = ckt.node("a");
        assert!(ckt.add_resistor("R1", a, Circuit::GROUND, 0.0).is_err());
        assert!(ckt.add_resistor("R2", a, Circuit::GROUND, -5.0).is_err());
        assert!(ckt.add_capacitor("C1", a, Circuit::GROUND, f64::NAN).is_err());
        assert!(ckt.add_inductor("L1", a, Circuit::GROUND, f64::INFINITY).is_err());
    }

    #[test]
    fn validate_accepts_connected() {
        rc().validate().unwrap();
    }

    #[test]
    fn validate_rejects_floating_node() {
        let mut ckt = rc();
        let f1 = ckt.node("float1");
        let f2 = ckt.node("float2");
        ckt.add_resistor("Rf", f1, f2, 1.0).unwrap();
        assert!(matches!(ckt.validate(), Err(CircuitError::FloatingNode { .. })));
    }

    #[test]
    fn validate_rejects_empty() {
        let ckt = Circuit::new("empty");
        assert_eq!(ckt.validate(), Err(CircuitError::Empty));
    }

    #[test]
    fn vccs_control_pins_do_not_bond() {
        let mut ckt = Circuit::new("t");
        let a = ckt.node("a");
        let c = ckt.node("ctl");
        ckt.add_vsource("V1", a, Circuit::GROUND, Waveform::dc(1.0)).unwrap();
        ckt.add_vccs("G1", a, Circuit::GROUND, c, Circuit::GROUND, 1e-3).unwrap();
        // `ctl` is floating: sensing alone does not connect it.
        assert!(matches!(ckt.validate(), Err(CircuitError::FloatingNode { .. })));
    }

    #[test]
    fn summary_mentions_counts() {
        let s = rc().summary();
        assert!(s.contains("2 nodes"));
        assert!(s.contains("3 elements"));
    }

    #[test]
    fn nonlinear_count_counts_devices() {
        let mut ckt = rc();
        let b = ckt.find_node("b").unwrap();
        ckt.add_diode("D1", b, Circuit::GROUND, DiodeModel::default()).unwrap();
        assert_eq!(ckt.nonlinear_count(), 1);
    }
}
