//! Prints the Newton hot-path figure (solver caches off vs on: device
//! bypass, chord iterations with LU reuse, companion caching) on the
//! MOS-heavy chain and the analog grid, and writes the rows to
//! `BENCH_newton.json`.
//!
//! Usage: `cargo run --release -p wavepipe-bench --bin newton_path [-- --small]`

use wavepipe_bench::{fig_newton_path, newton_path_to_json};
use wavepipe_circuit::generators;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let small = args.iter().any(|a| a == "--small");

    // One digital chain (deep quiescent regions → bypass-friendly) and one
    // analog grid (smooth trajectories → chord-friendly): the cache layers
    // must pay off on both classes, single-thread, end to end.
    let subjects = if small {
        vec![generators::inverter_chain(20), generators::power_grid(4, 4)]
    } else {
        vec![generators::inverter_chain(120), generators::power_grid(10, 10)]
    };

    let (txt, rows) = fig_newton_path(&subjects);
    println!("{txt}");

    std::fs::write("BENCH_newton.json", newton_path_to_json(&rows))?;
    println!("wrote BENCH_newton.json");
    Ok(())
}
