//! Prints the figure data of the WavePipe evaluation (accuracy, step-size
//! profiles, thread scaling, and the scheduling ablations) and writes the
//! thread-scaling series to `BENCH_figures.json` for machine tracking.
//!
//! Usage: `cargo run --release -p wavepipe-bench --bin figures [-- --small]
//! [--trace <path>] [--trace-format jsonl|chrome]`
//!
//! `--trace` additionally performs one Combined-scheme demonstration run on
//! the first suite benchmark with a recording probe attached and writes the
//! telemetry stream to `<path>`.

use wavepipe_bench::{
    fig_accuracy, fig_bp_ablation, fig_fp_ablation, fig_scaling, fig_step_profile, run_traced,
    scaling_to_json, suite, Scale, TraceArgs,
};
use wavepipe_circuit::generators;
use wavepipe_core::Scheme;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (trace, args) = TraceArgs::parse(std::env::args().skip(1))?;
    let scale = if args.iter().any(|a| a == "--small") { Scale::Small } else { Scale::Full };
    println!("{}", fig_accuracy(scale));

    // Figure B on the two circuits whose step profiles differ the most.
    let all = suite(scale);
    for name_fragment in ["ring_oscillator", "power_grid"] {
        if let Some(b) = all.iter().find(|b| b.name.contains(name_fragment)) {
            println!("{}", fig_step_profile(b));
        }
    }

    // Figure C on a mixed and a digital workload.
    let mut scaling = Vec::new();
    for name_fragment in ["power_grid", "inverter_chain"] {
        if let Some(b) = all.iter().find(|b| b.name.contains(name_fragment)) {
            let (txt, series) = fig_scaling(b);
            println!("{txt}");
            scaling.push((b.name.clone(), series));
        }
    }

    // Figure D ablations.
    println!("{}", fig_fp_ablation(&generators::amp_chain(2)));
    println!("{}", fig_bp_ablation(&generators::power_grid(6, 6)));

    let groups: Vec<(&str, &wavepipe_bench::ScalingSeries)> =
        scaling.iter().map(|(n, s)| (n.as_str(), s)).collect();
    std::fs::write("BENCH_figures.json", scaling_to_json(&groups))?;
    println!("wrote BENCH_figures.json");

    if let Some(path) = &trace.path {
        let b = &all[0];
        let (rep, events) = run_traced(b, Scheme::Combined, 4);
        trace.write(&events)?;
        println!(
            "wrote {} ({} events, traced {} on {})",
            path.display(),
            events.len(),
            rep.scheme,
            b.name
        );
    }
    Ok(())
}
