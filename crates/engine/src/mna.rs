//! Modified nodal analysis: circuit compilation, pattern construction, and
//! per-iteration stamping.
//!
//! A [`Circuit`] is compiled once into an [`MnaSystem`]: a flat device list,
//! the fixed sparse matrix pattern, and a *slot table* mapping every stamp
//! emission to its position in the CSC value array. Each Newton iteration
//! then restamps values with zero symbolic work. The system itself is
//! immutable and shareable across threads; each solver owns an
//! [`MnaWorkspace`] (matrix values, RHS, junction-limiting state).

use crate::devices::{
    bjt_eval, depletion_charge, diode_eval, junction_vcrit, mos_eval, pnjlim, MosParams, VT,
};
use crate::error::Result;
use crate::integrate::IntegCoeffs;
use wavepipe_circuit::{Circuit, Element, MosPolarity, Node, Waveform};
use wavepipe_sparse::{CooMatrix, CscMatrix};

/// Sentinel unknown index for the ground node.
const GND: usize = usize::MAX;

/// Stiff conductance used to enforce capacitor initial conditions in `UIC`
/// solves (1 MS: a forced node reaches its IC to within microvolts against
/// any realistic surrounding network).
const GIC: f64 = 1e6;

fn unknown_of(node: Node) -> usize {
    if node.is_ground() {
        GND
    } else {
        node.index() - 1
    }
}

/// A device compiled to unknown indices and pre-derived model constants.
///
/// `pub(crate)` so the small-signal (AC) assembler can reuse the compiled
/// form.
#[derive(Debug, Clone)]
pub(crate) enum Dev {
    Conductance {
        p: usize,
        n: usize,
        g: f64,
    },
    Cap {
        p: usize,
        n: usize,
        c: f64,
        state: usize,
        ic: Option<f64>,
    },
    /// Nonlinear depletion capacitance (pn-junction): `q(v)` companion.
    Jcap {
        p: usize,
        n: usize,
        cj0: f64,
        vj: f64,
        m: f64,
        fc: f64,
        state: usize,
    },
    Ind {
        p: usize,
        n: usize,
        l: f64,
        branch: usize,
        ic: Option<f64>,
    },
    Vsrc {
        p: usize,
        n: usize,
        branch: usize,
        wave: Waveform,
        ac_mag: f64,
    },
    Isrc {
        p: usize,
        n: usize,
        wave: Waveform,
        ac_mag: f64,
    },
    Diode {
        p: usize,
        n: usize,
        is: f64,
        nvt: f64,
        vcrit: f64,
        jct: usize,
    },
    Mos {
        d: usize,
        g: usize,
        s: usize,
        b: usize,
        params: MosParams,
    },
    Bjt {
        c: usize,
        b: usize,
        e: usize,
        sign: f64,
        is: f64,
        bf: f64,
        br: f64,
        jct_be: usize,
        jct_bc: usize,
    },
    Vcvs {
        p: usize,
        n: usize,
        cp: usize,
        cn: usize,
        gain: f64,
        branch: usize,
    },
    Vccs {
        p: usize,
        n: usize,
        cp: usize,
        cn: usize,
        gm: f64,
    },
}

/// Inputs to a stamping pass: the time point, discretisation, history, and
/// continuation knobs.
#[derive(Debug, Clone, Copy)]
pub struct StampInput<'a> {
    /// Time of the point being solved (0 for DC).
    pub time: f64,
    /// Integration coefficients, or `None` for DC (capacitors open,
    /// inductors short).
    pub coeffs: Option<IntegCoeffs>,
    /// Solution at the previous accepted time point.
    pub x_prev: &'a [f64],
    /// Solution two accepted points back (used by Gear2).
    pub x_prev2: &'a [f64],
    /// Capacitor currents at the previous accepted point (used by TRAP).
    pub cap_currents: &'a [f64],
    /// Junction minimum conductance.
    pub gmin: f64,
    /// Extra conductance from every node to ground (gmin-stepping
    /// continuation; 0 in normal operation).
    pub gshunt: f64,
    /// Scale factor on independent sources (source-stepping continuation;
    /// 1 in normal operation).
    pub source_scale: f64,
    /// Initial-condition (`UIC`) solve: capacitors with an `IC=` are forced
    /// to their initial voltage through a stiff Norton source, capacitors
    /// without are open, and inductor branch currents are pinned to their
    /// initial values. Only meaningful together with `coeffs: None`.
    pub ic_mode: bool,
}

/// Mutable per-solver state: matrix values, right-hand side, junction
/// voltage memory for `pnjlim`.
#[derive(Debug, Clone)]
pub struct MnaWorkspace {
    /// The MNA matrix (fixed pattern, values restamped each call).
    pub matrix: CscMatrix,
    /// Right-hand side vector.
    pub rhs: Vec<f64>,
    /// Last-used junction voltages (NPN/diode-equivalent frame).
    pub junction_state: Vec<f64>,
    /// Whether the last stamp had to limit any junction voltage. While
    /// limiting is active the linearisation point differs from the iterate,
    /// so Newton must NOT declare convergence — otherwise bias circuits
    /// falsely converge with dead junctions (tiny currents below the delta
    /// tolerance while the limiter is still climbing).
    pub limited: bool,
}

/// A compiled circuit: fixed MNA structure ready for repeated stamping.
#[derive(Debug, Clone)]
pub struct MnaSystem {
    devices: Vec<Dev>,
    n_nodes: usize,
    n_unknowns: usize,
    n_cap_states: usize,
    n_junctions: usize,
    pattern: CscMatrix,
    slots: Vec<usize>,
    node_names: Vec<String>,
    branch_names: Vec<(String, usize)>,
    /// Independent source name -> index into `devices`.
    source_names: Vec<(String, usize)>,
    source_waves: Vec<Waveform>,
}

enum Sink<'a> {
    Record(&'a mut Vec<(usize, usize)>),
    Write { values: &'a mut [f64], slots: &'a [usize], cursor: usize },
}

impl Sink<'_> {
    #[inline]
    fn mat(&mut self, r: usize, c: usize, v: f64) {
        if r == GND || c == GND {
            return;
        }
        match self {
            Sink::Record(entries) => entries.push((r, c)),
            Sink::Write { values, slots, cursor } => {
                values[slots[*cursor]] += v;
                *cursor += 1;
            }
        }
    }
}

#[inline]
fn rhs_add(rhs: &mut [f64], u: usize, v: f64) {
    if u != GND {
        rhs[u] += v;
    }
}

#[inline]
fn volt(x: &[f64], u: usize) -> f64 {
    if u == GND {
        0.0
    } else {
        x[u]
    }
}

impl MnaSystem {
    /// Compiles a circuit into a stamping-ready MNA system.
    ///
    /// # Errors
    ///
    /// Returns [`crate::EngineError::Circuit`] if the netlist fails validation.
    pub fn compile(circuit: &Circuit) -> Result<Self> {
        circuit.validate()?;
        let n_nodes = circuit.node_count();
        let mut devices = Vec::new();
        let mut branch_names = Vec::new();
        let mut source_names: Vec<(String, usize)> = Vec::new();
        let mut source_waves = Vec::new();
        let mut next_branch = n_nodes;
        let mut next_cap = 0usize;
        let mut next_jct = 0usize;

        for el in circuit.elements() {
            match el {
                Element::Resistor { p, n, resistance, .. } => {
                    devices.push(Dev::Conductance {
                        p: unknown_of(*p),
                        n: unknown_of(*n),
                        g: 1.0 / resistance,
                    });
                }
                Element::Capacitor { p, n, capacitance, initial_voltage, .. } => {
                    devices.push(Dev::Cap {
                        p: unknown_of(*p),
                        n: unknown_of(*n),
                        c: *capacitance,
                        state: next_cap,
                        ic: *initial_voltage,
                    });
                    next_cap += 1;
                }
                Element::Inductor { name, p, n, inductance, initial_current, .. } => {
                    branch_names.push((name.clone(), next_branch));
                    devices.push(Dev::Ind {
                        p: unknown_of(*p),
                        n: unknown_of(*n),
                        l: *inductance,
                        branch: next_branch,
                        ic: *initial_current,
                    });
                    next_branch += 1;
                }
                Element::VoltageSource { name, p, n, waveform, ac_magnitude } => {
                    branch_names.push((name.clone(), next_branch));
                    source_names.push((name.clone(), devices.len()));
                    source_waves.push(waveform.clone());
                    devices.push(Dev::Vsrc {
                        p: unknown_of(*p),
                        n: unknown_of(*n),
                        branch: next_branch,
                        wave: waveform.clone(),
                        ac_mag: *ac_magnitude,
                    });
                    next_branch += 1;
                }
                Element::CurrentSource { name, p, n, waveform, ac_magnitude } => {
                    source_names.push((name.clone(), devices.len()));
                    source_waves.push(waveform.clone());
                    devices.push(Dev::Isrc {
                        p: unknown_of(*p),
                        n: unknown_of(*n),
                        wave: waveform.clone(),
                        ac_mag: *ac_magnitude,
                    });
                }
                Element::Diode { p, n, model, .. } => {
                    let nvt = model.n * VT;
                    devices.push(Dev::Diode {
                        p: unknown_of(*p),
                        n: unknown_of(*n),
                        is: model.is,
                        nvt,
                        vcrit: junction_vcrit(model.is, nvt),
                        jct: next_jct,
                    });
                    next_jct += 1;
                    if model.cj0 > 0.0 {
                        devices.push(Dev::Jcap {
                            p: unknown_of(*p),
                            n: unknown_of(*n),
                            cj0: model.cj0,
                            vj: model.vj,
                            m: model.m,
                            fc: model.fc,
                            state: next_cap,
                        });
                        next_cap += 1;
                    }
                }
                Element::Mosfet { d, g, s, b, model, .. } => {
                    let sign = match model.polarity {
                        MosPolarity::Nmos => 1.0,
                        MosPolarity::Pmos => -1.0,
                    };
                    devices.push(Dev::Mos {
                        d: unknown_of(*d),
                        g: unknown_of(*g),
                        s: unknown_of(*s),
                        b: unknown_of(*b),
                        params: MosParams {
                            sign,
                            vt0_eq: sign * model.vt0,
                            beta: model.beta(),
                            lambda: model.lambda,
                            gamma: model.gamma,
                            phi: model.phi,
                        },
                    });
                    for (a, b, c) in [(*g, *s, model.cgs), (*g, *d, model.cgd)] {
                        if c > 0.0 {
                            devices.push(Dev::Cap {
                                p: unknown_of(a),
                                n: unknown_of(b),
                                c,
                                state: next_cap,
                                ic: None,
                            });
                            next_cap += 1;
                        }
                    }
                }
                Element::Bjt { c, b, e, model, .. } => {
                    devices.push(Dev::Bjt {
                        c: unknown_of(*c),
                        b: unknown_of(*b),
                        e: unknown_of(*e),
                        sign: if model.npn { 1.0 } else { -1.0 },
                        is: model.is,
                        bf: model.bf,
                        br: model.br,
                        jct_be: next_jct,
                        jct_bc: next_jct + 1,
                    });
                    next_jct += 2;
                }
                Element::Vcvs { name, p, n, cp, cn, gain } => {
                    branch_names.push((name.clone(), next_branch));
                    devices.push(Dev::Vcvs {
                        p: unknown_of(*p),
                        n: unknown_of(*n),
                        cp: unknown_of(*cp),
                        cn: unknown_of(*cn),
                        gain: *gain,
                        branch: next_branch,
                    });
                    next_branch += 1;
                }
                Element::Vccs { p, n, cp, cn, gm, .. } => {
                    devices.push(Dev::Vccs {
                        p: unknown_of(*p),
                        n: unknown_of(*n),
                        cp: unknown_of(*cp),
                        cn: unknown_of(*cn),
                        gm: *gm,
                    });
                }
            }
        }
        let n_unknowns = next_branch;
        let node_names: Vec<String> = circuit.signal_node_names().map(str::to_string).collect();

        let mut sys = MnaSystem {
            devices,
            n_nodes,
            n_unknowns,
            n_cap_states: next_cap,
            n_junctions: next_jct,
            pattern: CscMatrix::zeros(0, 0),
            slots: Vec::new(),
            node_names,
            branch_names,
            source_names,
            source_waves,
        };
        sys.build_pattern();
        Ok(sys)
    }

    /// Emission pass that records every matrix position a stamp can touch,
    /// then freezes the CSC pattern and the per-emission slot table.
    fn build_pattern(&mut self) {
        let mut entries = Vec::new();
        let zeros = vec![0.0_f64; self.n_unknowns];
        let caps = vec![0.0_f64; self.n_cap_states];
        let mut junction = vec![0.0_f64; self.n_junctions];
        let mut rhs = vec![0.0_f64; self.n_unknowns];
        let mut limited = false;
        let input = StampInput {
            time: 0.0,
            coeffs: None,
            x_prev: &zeros,
            x_prev2: &zeros,
            cap_currents: &caps,
            gmin: 0.0,
            gshunt: 0.0,
            source_scale: 1.0,
            ic_mode: false,
        };
        {
            let mut sink = Sink::Record(&mut entries);
            self.emit(&input, &zeros, &mut junction, &mut limited, &mut rhs, &mut sink);
        }
        let n = self.n_unknowns;
        let mut coo = CooMatrix::with_capacity(n, n, entries.len());
        for &(r, c) in &entries {
            coo.push(r, c, 0.0).expect("pattern entry in range");
        }
        let pattern = coo.to_csc();
        self.slots = entries
            .iter()
            .map(|&(r, c)| pattern.find_index(r, c).expect("entry present in pattern"))
            .collect();
        self.pattern = pattern;
    }

    /// Number of MNA unknowns (node voltages + branch currents).
    pub fn n_unknowns(&self) -> usize {
        self.n_unknowns
    }

    /// Number of signal nodes (unknowns `0..n_nodes` are node voltages).
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Number of capacitor state slots (one per physical or model capacitor).
    pub fn cap_state_count(&self) -> usize {
        self.n_cap_states
    }

    /// The frozen matrix pattern with zero values (clone into a workspace).
    pub fn pattern(&self) -> &CscMatrix {
        &self.pattern
    }

    /// Creates a fresh workspace for this system.
    pub fn new_workspace(&self) -> MnaWorkspace {
        MnaWorkspace {
            matrix: self.pattern.clone(),
            rhs: vec![0.0; self.n_unknowns],
            junction_state: vec![0.0; self.n_junctions],
            limited: false,
        }
    }

    /// Unknown index of the named node, if it exists and is not ground.
    pub fn node_unknown(&self, name: &str) -> Option<usize> {
        self.node_names.iter().position(|n| n == name)
    }

    /// Name of the node whose voltage is unknown `unknown`.
    ///
    /// # Panics
    ///
    /// Panics if `unknown >= n_nodes()`.
    pub fn node_name_of(&self, unknown: usize) -> &str {
        &self.node_names[unknown]
    }

    /// All signal-node names in unknown order.
    pub fn node_names(&self) -> &[String] {
        &self.node_names
    }

    /// Compiled device list (crate-internal: used by the AC assembler and
    /// the DC-sweep source override).
    pub(crate) fn devices(&self) -> &[Dev] {
        &self.devices
    }

    /// Replaces the named independent source's waveform with a DC value
    /// (the DC-sweep hot path — pattern and slot table are untouched).
    /// Returns `false` if no independent source with that name exists.
    pub fn override_source(&mut self, name: &str, value: f64) -> bool {
        let Some(&(_, idx)) = self.source_names.iter().find(|(n, _)| n.eq_ignore_ascii_case(name))
        else {
            return false;
        };
        match &mut self.devices[idx] {
            Dev::Vsrc { wave, .. } | Dev::Isrc { wave, .. } => {
                *wave = Waveform::Dc(value);
                true
            }
            _ => false,
        }
    }

    /// All branch-current element names with their unknown indices.
    pub fn branch_names(&self) -> &[(String, usize)] {
        &self.branch_names
    }

    /// Unknown index of the named branch-current element (V source, inductor,
    /// VCVS), if present.
    pub fn branch_unknown(&self, element_name: &str) -> Option<usize> {
        self.branch_names
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(element_name))
            .map(|&(_, i)| i)
    }

    /// Union of all source-waveform breakpoints in `[0, tstop]`, sorted and
    /// deduplicated.
    pub fn breakpoints(&self, tstop: f64) -> Vec<f64> {
        let mut bp: Vec<f64> =
            self.source_waves.iter().flat_map(|w| w.breakpoints(tstop)).collect();
        bp.push(tstop);
        bp.sort_by(|a, b| a.partial_cmp(b).expect("finite breakpoints"));
        bp.dedup_by(|a, b| (*a - *b).abs() < 1e-18);
        bp.retain(|&t| t > 0.0);
        bp
    }

    /// Stamps the linearised system at iterate `x_iter` into `ws`.
    ///
    /// Returns the number of device evaluations performed (for work
    /// accounting).
    pub fn stamp(&self, ws: &mut MnaWorkspace, input: &StampInput<'_>, x_iter: &[f64]) -> usize {
        ws.matrix.set_values_zero();
        ws.rhs.fill(0.0);
        ws.limited = false;
        let MnaWorkspace { matrix, rhs, junction_state, limited } = ws;
        let mut sink = Sink::Write { values: matrix.values_mut(), slots: &self.slots, cursor: 0 };
        self.emit(input, x_iter, junction_state, limited, rhs, &mut sink)
    }

    /// Capacitor currents at the newly accepted point, for the next step's
    /// TRAP companion.
    pub fn cap_currents_after(
        &self,
        coeffs: &IntegCoeffs,
        x_new: &[f64],
        x_prev: &[f64],
        x_prev2: &[f64],
        cap_prev: &[f64],
    ) -> Vec<f64> {
        let mut out = vec![0.0; self.n_cap_states];
        for dev in &self.devices {
            match *dev {
                Dev::Cap { p, n, c, state, .. } => {
                    let u_new = volt(x_new, p) - volt(x_new, n);
                    let u_prev = volt(x_prev, p) - volt(x_prev, n);
                    let u_prev2 = volt(x_prev2, p) - volt(x_prev2, n);
                    let dq = coeffs.derivative(u_new, u_prev, u_prev2, cap_prev[state] / c);
                    out[state] = c * dq;
                }
                Dev::Jcap { p, n, cj0, vj, m, fc, state } => {
                    let q_at =
                        |xx: &[f64]| depletion_charge(volt(xx, p) - volt(xx, n), cj0, vj, m, fc).0;
                    out[state] = coeffs.derivative(
                        q_at(x_new),
                        q_at(x_prev),
                        q_at(x_prev2),
                        cap_prev[state],
                    );
                }
                _ => {}
            }
        }
        out
    }

    /// The single emission routine shared by the pattern pass and every
    /// numeric stamp. Emission order and count are value-independent, which
    /// is what keeps the slot table valid.
    fn emit(
        &self,
        input: &StampInput<'_>,
        x: &[f64],
        junction: &mut [f64],
        limited: &mut bool,
        rhs: &mut [f64],
        sink: &mut Sink<'_>,
    ) -> usize {
        let mut evals = 0usize;
        // Node shunts: structural diagonal for every node row.
        for i in 0..self.n_nodes {
            sink.mat(i, i, input.gshunt);
        }
        let (a0, a1, a2, b1) = match input.coeffs {
            Some(c) => (c.a0, c.a1, c.a2, c.b1),
            None => (0.0, 0.0, 0.0, 0.0),
        };
        let dc = input.coeffs.is_none();

        for dev in &self.devices {
            evals += 1;
            match *dev {
                Dev::Conductance { p, n, g } => {
                    sink.mat(p, p, g);
                    sink.mat(p, n, -g);
                    sink.mat(n, p, -g);
                    sink.mat(n, n, g);
                }
                Dev::Cap { p, n, c, state, ic } => {
                    let (geq, ieq) = if input.ic_mode {
                        match ic {
                            // Stiff Norton source forcing u = v0.
                            Some(v0) => (GIC, -GIC * v0),
                            None => (0.0, 0.0),
                        }
                    } else if dc {
                        (0.0, 0.0)
                    } else {
                        let u_prev = volt(input.x_prev, p) - volt(input.x_prev, n);
                        let u_prev2 = volt(input.x_prev2, p) - volt(input.x_prev2, n);
                        let geq = c * a0;
                        let ieq = c * (a1 * u_prev + a2 * u_prev2) + b1 * input.cap_currents[state];
                        (geq, ieq)
                    };
                    sink.mat(p, p, geq);
                    sink.mat(p, n, -geq);
                    sink.mat(n, p, -geq);
                    sink.mat(n, n, geq);
                    rhs_add(rhs, p, -ieq);
                    rhs_add(rhs, n, ieq);
                }
                Dev::Jcap { p, n, cj0, vj, m, fc, state } => {
                    // Nonlinear charge companion: i = dq/dt with
                    // q = q_dep(u). Newton-linearised at the iterate:
                    // geq = a0*c(u_k), ieq = a0*(q(u_k) - c(u_k)*u_k)
                    //       + a1*q(u_prev) + a2*q(u_prev2) + b1*i_prev.
                    let (geq, ieq) = if dc {
                        (0.0, 0.0)
                    } else {
                        let u_k = volt(x, p) - volt(x, n);
                        let u_prev = volt(input.x_prev, p) - volt(input.x_prev, n);
                        let u_prev2 = volt(input.x_prev2, p) - volt(input.x_prev2, n);
                        let (q_k, c_k) = depletion_charge(u_k, cj0, vj, m, fc);
                        let (q_prev, _) = depletion_charge(u_prev, cj0, vj, m, fc);
                        let (q_prev2, _) = depletion_charge(u_prev2, cj0, vj, m, fc);
                        let geq = a0 * c_k;
                        let ieq = a0 * (q_k - c_k * u_k)
                            + a1 * q_prev
                            + a2 * q_prev2
                            + b1 * input.cap_currents[state];
                        (geq, ieq)
                    };
                    sink.mat(p, p, geq);
                    sink.mat(p, n, -geq);
                    sink.mat(n, p, -geq);
                    sink.mat(n, n, geq);
                    rhs_add(rhs, p, -ieq);
                    rhs_add(rhs, n, ieq);
                }
                Dev::Ind { p, n, l, branch, ic } => {
                    // KCL contributions of the branch current.
                    sink.mat(p, branch, 1.0);
                    sink.mat(n, branch, -1.0);
                    if input.ic_mode {
                        // Branch equation replaced by i = i0.
                        sink.mat(branch, p, 0.0);
                        sink.mat(branch, n, 0.0);
                        sink.mat(branch, branch, -1.0);
                        rhs_add(rhs, branch, -ic.unwrap_or(0.0));
                        continue;
                    }
                    // Branch equation: v_p - v_n - L*di/dt = 0.
                    sink.mat(branch, p, 1.0);
                    sink.mat(branch, n, -1.0);
                    let (leq, rhs_b) = if dc {
                        (0.0, 0.0)
                    } else {
                        let i_prev = volt(input.x_prev, branch);
                        let i_prev2 = volt(input.x_prev2, branch);
                        let u_prev = volt(input.x_prev, p) - volt(input.x_prev, n);
                        (l * a0, l * (a1 * i_prev + a2 * i_prev2) + b1 * u_prev)
                    };
                    sink.mat(branch, branch, -leq);
                    rhs_add(rhs, branch, rhs_b);
                }
                Dev::Vsrc { p, n, branch, ref wave, .. } => {
                    sink.mat(p, branch, 1.0);
                    sink.mat(n, branch, -1.0);
                    sink.mat(branch, p, 1.0);
                    sink.mat(branch, n, -1.0);
                    rhs_add(rhs, branch, wave.value(input.time) * input.source_scale);
                }
                Dev::Isrc { p, n, ref wave, .. } => {
                    let i = wave.value(input.time) * input.source_scale;
                    rhs_add(rhs, p, -i);
                    rhs_add(rhs, n, i);
                }
                Dev::Diode { p, n, is, nvt, vcrit, jct } => {
                    let u_raw = volt(x, p) - volt(x, n);
                    let u = pnjlim(u_raw, junction[jct], nvt, vcrit);
                    if (u - u_raw).abs() > 1e-10 {
                        *limited = true;
                    }
                    junction[jct] = u;
                    let (i_d, g_d) = diode_eval(u, is, nvt);
                    let g = g_d + input.gmin;
                    sink.mat(p, p, g);
                    sink.mat(p, n, -g);
                    sink.mat(n, p, -g);
                    sink.mat(n, n, g);
                    let ieq = i_d - g_d * u;
                    rhs_add(rhs, p, -ieq);
                    rhs_add(rhs, n, ieq);
                }
                Dev::Mos { d, g, s, b, ref params } => {
                    let (vd, vg, vs, vb) = (volt(x, d), volt(x, g), volt(x, s), volt(x, b));
                    let e = mos_eval(vd, vg, vs, vb, params);
                    // Drain row.
                    sink.mat(d, d, e.g_dd);
                    sink.mat(d, g, e.g_dg);
                    sink.mat(d, s, e.g_ds);
                    sink.mat(d, b, e.g_db);
                    // Source row (current conservation: i_s = -i_d; the bulk
                    // carries no current in this model).
                    sink.mat(s, d, -e.g_dd);
                    sink.mat(s, g, -e.g_dg);
                    sink.mat(s, s, -e.g_ds);
                    sink.mat(s, b, -e.g_db);
                    // Convergence aid: gmin across the channel.
                    sink.mat(d, d, input.gmin);
                    sink.mat(d, s, -input.gmin);
                    sink.mat(s, d, -input.gmin);
                    sink.mat(s, s, input.gmin);
                    let ieq = e.id - (e.g_dd * vd + e.g_dg * vg + e.g_ds * vs + e.g_db * vb);
                    rhs_add(rhs, d, -ieq);
                    rhs_add(rhs, s, ieq);
                }
                Dev::Bjt { c, b, e, sign, is, bf, br, jct_be, jct_bc } => {
                    let (vc, vb, ve) = (volt(x, c), volt(x, b), volt(x, e));
                    let nvt = VT;
                    let vcrit = junction_vcrit(is, nvt);
                    let vbe_raw = sign * (vb - ve);
                    let vbc_raw = sign * (vb - vc);
                    let vbe = pnjlim(vbe_raw, junction[jct_be], nvt, vcrit);
                    let vbc = pnjlim(vbc_raw, junction[jct_bc], nvt, vcrit);
                    if (vbe - vbe_raw).abs() > 1e-10 || (vbc - vbc_raw).abs() > 1e-10 {
                        *limited = true;
                    }
                    junction[jct_be] = vbe;
                    junction[jct_bc] = vbc;
                    let ev = bjt_eval(vbe, vbc, sign, is, bf, br);
                    // Reconstruct limited node voltages for the equivalent
                    // currents: the linearisation point is (vbe, vbc) in the
                    // device frame; express ieq via raw voltages consistent
                    // with the derivatives.
                    let vb_l = vb;
                    let ve_l = vb - sign * vbe;
                    let vc_l = vb - sign * vbc;
                    // Collector row.
                    sink.mat(c, c, ev.g_cc);
                    sink.mat(c, b, ev.g_cb);
                    sink.mat(c, e, ev.g_ce);
                    // Base row.
                    sink.mat(b, c, ev.g_bc);
                    sink.mat(b, b, ev.g_bb);
                    sink.mat(b, e, ev.g_be);
                    // Emitter row: i_e = -(i_c + i_b).
                    sink.mat(e, c, -(ev.g_cc + ev.g_bc));
                    sink.mat(e, b, -(ev.g_cb + ev.g_bb));
                    sink.mat(e, e, -(ev.g_ce + ev.g_be));
                    // gmin across both junctions.
                    sink.mat(b, b, 2.0 * input.gmin);
                    sink.mat(b, e, -input.gmin);
                    sink.mat(e, b, -input.gmin);
                    sink.mat(e, e, input.gmin);
                    sink.mat(b, c, -input.gmin);
                    sink.mat(c, b, -input.gmin);
                    sink.mat(c, c, input.gmin);
                    let ieq_c = ev.ic - (ev.g_cc * vc_l + ev.g_cb * vb_l + ev.g_ce * ve_l);
                    let ieq_b = ev.ib - (ev.g_bc * vc_l + ev.g_bb * vb_l + ev.g_be * ve_l);
                    rhs_add(rhs, c, -ieq_c);
                    rhs_add(rhs, b, -ieq_b);
                    rhs_add(rhs, e, ieq_c + ieq_b);
                }
                Dev::Vcvs { p, n, cp, cn, gain, branch } => {
                    sink.mat(p, branch, 1.0);
                    sink.mat(n, branch, -1.0);
                    sink.mat(branch, p, 1.0);
                    sink.mat(branch, n, -1.0);
                    sink.mat(branch, cp, -gain);
                    sink.mat(branch, cn, gain);
                }
                Dev::Vccs { p, n, cp, cn, gm } => {
                    sink.mat(p, cp, gm);
                    sink.mat(p, cn, -gm);
                    sink.mat(n, cp, -gm);
                    sink.mat(n, cn, gm);
                }
            }
        }
        evals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::integrate::Method;
    use wavepipe_circuit::Waveform as W;

    fn dc_input<'a>(x_prev: &'a [f64], caps: &'a [f64]) -> StampInput<'a> {
        StampInput {
            time: 0.0,
            coeffs: None,
            x_prev,
            x_prev2: x_prev,
            cap_currents: caps,
            gmin: 1e-12,
            gshunt: 0.0,
            source_scale: 1.0,
            ic_mode: false,
        }
    }

    fn divider() -> Circuit {
        let mut ckt = Circuit::new("divider");
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_vsource("V1", a, Circuit::GROUND, W::dc(10.0)).unwrap();
        ckt.add_resistor("R1", a, b, 1000.0).unwrap();
        ckt.add_resistor("R2", b, Circuit::GROUND, 1000.0).unwrap();
        ckt
    }

    #[test]
    fn compile_counts() {
        let sys = MnaSystem::compile(&divider()).unwrap();
        assert_eq!(sys.n_nodes(), 2);
        assert_eq!(sys.n_unknowns(), 3);
        assert_eq!(sys.cap_state_count(), 0);
        assert!(sys.pattern().nnz() > 0);
    }

    #[test]
    fn stamp_and_solve_divider_dc() {
        let sys = MnaSystem::compile(&divider()).unwrap();
        let mut ws = sys.new_workspace();
        let x = vec![0.0; 3];
        let caps: Vec<f64> = vec![];
        sys.stamp(&mut ws, &dc_input(&x, &caps), &x);
        let lu = wavepipe_sparse::SparseLu::factor(&ws.matrix, &Default::default()).unwrap();
        let sol = lu.solve(&ws.rhs).unwrap();
        let a = sys.node_unknown("a").unwrap();
        let b = sys.node_unknown("b").unwrap();
        assert!((sol[a] - 10.0).abs() < 1e-9, "v(a) = {}", sol[a]);
        assert!((sol[b] - 5.0).abs() < 1e-9, "v(b) = {}", sol[b]);
        // Source current = -10/2k (flows out of the + terminal).
        let br = sys.branch_unknown("V1").unwrap();
        assert!((sol[br] + 0.005).abs() < 1e-9, "i(V1) = {}", sol[br]);
    }

    #[test]
    fn stamping_twice_gives_same_values() {
        let sys = MnaSystem::compile(&divider()).unwrap();
        let mut ws = sys.new_workspace();
        let x = vec![0.0; 3];
        let caps: Vec<f64> = vec![];
        sys.stamp(&mut ws, &dc_input(&x, &caps), &x);
        let v1 = ws.matrix.values().to_vec();
        let r1 = ws.rhs.clone();
        sys.stamp(&mut ws, &dc_input(&x, &caps), &x);
        assert_eq!(ws.matrix.values(), &v1[..]);
        assert_eq!(ws.rhs, r1);
    }

    #[test]
    fn capacitor_open_in_dc_shorted_dynamically() {
        let mut ckt = Circuit::new("rc");
        let a = ckt.node("a");
        ckt.add_isource("I1", Circuit::GROUND, a, W::dc(1e-3)).unwrap();
        ckt.add_resistor("R1", a, Circuit::GROUND, 1e3).unwrap();
        ckt.add_capacitor("C1", a, Circuit::GROUND, 1e-9).unwrap();
        let sys = MnaSystem::compile(&ckt).unwrap();
        let mut ws = sys.new_workspace();
        let x = vec![0.0; 1];
        let caps = vec![0.0; 1];
        // DC: only R matters -> v = 1 V.
        sys.stamp(&mut ws, &dc_input(&x, &caps), &x);
        let lu = wavepipe_sparse::SparseLu::factor(&ws.matrix, &Default::default()).unwrap();
        let sol = lu.solve(&ws.rhs).unwrap();
        assert!((sol[0] - 1.0).abs() < 1e-9);
        // Transient with huge geq (tiny step): cap holds its previous 0 V.
        let coeffs = IntegCoeffs::new(Method::BackwardEuler, 1e-15, 1e-15);
        let tr = StampInput { coeffs: Some(coeffs), time: 1e-15, ..dc_input(&x, &caps) };
        sys.stamp(&mut ws, &tr, &x);
        let lu = wavepipe_sparse::SparseLu::factor(&ws.matrix, &Default::default()).unwrap();
        let sol = lu.solve(&ws.rhs).unwrap();
        assert!(sol[0].abs() < 1e-4, "cap pins the node, v = {}", sol[0]);
    }

    #[test]
    fn breakpoints_include_sources_and_tstop() {
        let mut ckt = Circuit::new("t");
        let a = ckt.node("a");
        ckt.add_vsource("V1", a, Circuit::GROUND, W::pulse(0.0, 1.0, 1e-9, 1e-9, 1e-9, 2e-9, 0.0))
            .unwrap();
        ckt.add_resistor("R1", a, Circuit::GROUND, 50.0).unwrap();
        let sys = MnaSystem::compile(&ckt).unwrap();
        let bp = sys.breakpoints(10e-9);
        assert!(bp.iter().any(|&t| (t - 1e-9).abs() < 1e-18));
        assert_eq!(*bp.last().unwrap(), 10e-9);
        assert!(bp.iter().all(|&t| t > 0.0));
    }

    #[test]
    fn vccs_stamp_produces_transconductance() {
        let mut ckt = Circuit::new("g");
        let inp = ckt.node("in");
        let out = ckt.node("out");
        ckt.add_vsource("V1", inp, Circuit::GROUND, W::dc(2.0)).unwrap();
        ckt.add_vccs("G1", out, Circuit::GROUND, inp, Circuit::GROUND, 1e-3).unwrap();
        ckt.add_resistor("RL", out, Circuit::GROUND, 1e3).unwrap();
        ckt.add_resistor("Rb", inp, out, 1e9).unwrap(); // connectivity bond
        let sys = MnaSystem::compile(&ckt).unwrap();
        let mut ws = sys.new_workspace();
        let x = vec![0.0; sys.n_unknowns()];
        let caps: Vec<f64> = vec![];
        sys.stamp(&mut ws, &dc_input(&x, &caps), &x);
        let lu = wavepipe_sparse::SparseLu::factor(&ws.matrix, &Default::default()).unwrap();
        let sol = lu.solve(&ws.rhs).unwrap();
        // i = gm*vin = 2 mA out of `out` node -> v(out) = -2 V across 1k.
        let out_i = sys.node_unknown("out").unwrap();
        assert!((sol[out_i] + 2.0).abs() < 1e-4, "v(out) = {}", sol[out_i]);
    }
}
