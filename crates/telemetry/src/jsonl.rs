//! JSONL (one JSON object per line) export and import of event streams —
//! the machine-analysis format.

use crate::event::{DiscardReason, Event, EventKind};
use crate::json::{self, JsonValue};
use std::io::{self, Write};

/// Renders one event as a single-line JSON object (no trailing newline).
///
/// The payload fields of the kind are flattened into the top-level object:
/// `{"ts_ns":..,"round":..,"lane":..,"t_sim":..,"kind":"solve_start","h":..}`.
pub fn event_to_json(ev: &Event) -> String {
    use std::fmt::Write as _;
    let mut s = String::with_capacity(128);
    let _ = write!(
        s,
        "{{\"ts_ns\":{},\"round\":{},\"lane\":{},\"t_sim\":{},\"kind\":\"{}\"",
        ev.ts_ns,
        ev.round,
        ev.lane,
        json::fmt_f64(ev.t_sim),
        ev.kind.name()
    );
    match ev.kind {
        EventKind::RoundStart { width } => {
            let _ = write!(s, ",\"width\":{width}");
        }
        EventKind::RoundEnd { committed } => {
            let _ = write!(s, ",\"committed\":{committed}");
        }
        EventKind::SolveStart { h } => {
            let _ = write!(s, ",\"h\":{}", json::fmt_f64(h));
        }
        EventKind::SolveEnd { iterations, converged } => {
            let _ = write!(s, ",\"iterations\":{iterations},\"converged\":{converged}");
        }
        EventKind::NewtonIter { iteration } => {
            let _ = write!(s, ",\"iteration\":{iteration}");
        }
        EventKind::Factorization
        | EventKind::Refactorization
        | EventKind::JacobianReuse
        | EventKind::CompanionHit => {}
        EventKind::BypassedDevices { devices } => {
            let _ = write!(s, ",\"devices\":{devices}");
        }
        EventKind::LteReject { ratio, h_retry } => {
            let _ = write!(
                s,
                ",\"ratio\":{},\"h_retry\":{}",
                json::fmt_f64(ratio),
                json::fmt_f64(h_retry)
            );
        }
        EventKind::StepSizeChosen { h, ratio } => {
            let _ = write!(s, ",\"h\":{},\"ratio\":{}", json::fmt_f64(h), json::fmt_f64(ratio));
        }
        EventKind::PointAccepted { h } => {
            let _ = write!(s, ",\"h\":{}", json::fmt_f64(h));
        }
        EventKind::LeadAccepted | EventKind::SpeculationAccepted => {}
        EventKind::LeadDiscarded { reason } | EventKind::SpeculationDiscarded { reason } => {
            let _ = write!(s, ",\"reason\":\"{}\"", reason.name());
        }
        EventKind::AdaptiveChoice { forward } => {
            let _ = write!(s, ",\"forward\":{forward}");
        }
        EventKind::StampColorStart { color } => {
            let _ = write!(s, ",\"color\":{color}");
        }
        EventKind::StampColorEnd { color, devices } => {
            let _ = write!(s, ",\"color\":{color},\"devices\":{devices}");
        }
        EventKind::WorkerLost { lane } => {
            let _ = write!(s, ",\"lost_lane\":{lane}");
        }
        EventKind::FallbackSerial | EventKind::DeadlineHit | EventKind::CachePoisonRollback => {}
        EventKind::RecoveryAttempt { h } => {
            let _ = write!(s, ",\"h\":{}", json::fmt_f64(h));
        }
        EventKind::RecoveryRung { rung, success } => {
            let _ = write!(s, ",\"rung\":{rung},\"success\":{success}");
        }
        EventKind::KrylovSolve { iterations, restarts, precond_refreshes, fallback } => {
            let _ = write!(
                s,
                ",\"iterations\":{iterations},\"restarts\":{restarts},\
                 \"precond_refreshes\":{precond_refreshes},\"fallback\":{fallback}"
            );
        }
    }
    s.push('}');
    s
}

/// Writes the whole stream as JSONL.
///
/// # Errors
///
/// Propagates I/O failures from `out`.
pub fn write_jsonl<W: Write>(events: &[Event], out: &mut W) -> io::Result<()> {
    for ev in events {
        out.write_all(event_to_json(ev).as_bytes())?;
        out.write_all(b"\n")?;
    }
    Ok(())
}

/// A JSONL import failure.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonlError {
    /// 1-based line number.
    pub line: usize,
    /// Description of the problem.
    pub msg: String,
}

impl std::fmt::Display for JsonlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "jsonl line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for JsonlError {}

fn field_f64(v: &JsonValue, key: &str, line: usize) -> Result<f64, JsonlError> {
    v.get(key)
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| JsonlError { line, msg: format!("missing numeric field `{key}`") })
}

fn field_u64(v: &JsonValue, key: &str, line: usize) -> Result<u64, JsonlError> {
    Ok(field_f64(v, key, line)? as u64)
}

/// Parses one JSONL line back into an [`Event`].
///
/// # Errors
///
/// Returns [`JsonlError`] for malformed JSON or unknown/incomplete kinds.
pub fn event_from_json(text: &str, line: usize) -> Result<Event, JsonlError> {
    let v = json::parse(text).map_err(|e| JsonlError { line, msg: e.to_string() })?;
    let kind_name = v
        .get("kind")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| JsonlError { line, msg: "missing `kind`".to_string() })?;
    let reason = || -> Result<DiscardReason, JsonlError> {
        let name = v
            .get("reason")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| JsonlError { line, msg: "missing `reason`".to_string() })?;
        DiscardReason::from_name(name)
            .ok_or_else(|| JsonlError { line, msg: format!("unknown reason `{name}`") })
    };
    let kind = match kind_name {
        "round_start" => EventKind::RoundStart { width: field_u64(&v, "width", line)? as u32 },
        "round_end" => EventKind::RoundEnd { committed: field_u64(&v, "committed", line)? as u32 },
        "solve_start" => EventKind::SolveStart { h: field_f64(&v, "h", line)? },
        "solve_end" => EventKind::SolveEnd {
            iterations: field_u64(&v, "iterations", line)? as u32,
            converged: v
                .get("converged")
                .and_then(JsonValue::as_bool)
                .ok_or_else(|| JsonlError { line, msg: "missing `converged`".to_string() })?,
        },
        "newton_iter" => {
            EventKind::NewtonIter { iteration: field_u64(&v, "iteration", line)? as u32 }
        }
        "factorization" => EventKind::Factorization,
        "refactorization" => EventKind::Refactorization,
        "jacobian_reuse" => EventKind::JacobianReuse,
        "bypassed_devices" => {
            EventKind::BypassedDevices { devices: field_u64(&v, "devices", line)? as u32 }
        }
        "companion_hit" => EventKind::CompanionHit,
        "lte_reject" => EventKind::LteReject {
            ratio: field_f64(&v, "ratio", line)?,
            h_retry: field_f64(&v, "h_retry", line)?,
        },
        "step_size_chosen" => EventKind::StepSizeChosen {
            h: field_f64(&v, "h", line)?,
            ratio: field_f64(&v, "ratio", line)?,
        },
        "point_accepted" => EventKind::PointAccepted { h: field_f64(&v, "h", line)? },
        "lead_accepted" => EventKind::LeadAccepted,
        "lead_discarded" => EventKind::LeadDiscarded { reason: reason()? },
        "speculation_accepted" => EventKind::SpeculationAccepted,
        "speculation_discarded" => EventKind::SpeculationDiscarded { reason: reason()? },
        "adaptive_choice" => EventKind::AdaptiveChoice {
            forward: v
                .get("forward")
                .and_then(JsonValue::as_bool)
                .ok_or_else(|| JsonlError { line, msg: "missing `forward`".to_string() })?,
        },
        "stamp_color_start" => {
            EventKind::StampColorStart { color: field_u64(&v, "color", line)? as u32 }
        }
        "stamp_color_end" => EventKind::StampColorEnd {
            color: field_u64(&v, "color", line)? as u32,
            devices: field_u64(&v, "devices", line)? as u32,
        },
        "worker_lost" => EventKind::WorkerLost { lane: field_u64(&v, "lost_lane", line)? as u32 },
        "fallback_serial" => EventKind::FallbackSerial,
        "deadline_hit" => EventKind::DeadlineHit,
        "recovery_attempt" => EventKind::RecoveryAttempt { h: field_f64(&v, "h", line)? },
        "recovery_rung" => EventKind::RecoveryRung {
            rung: field_u64(&v, "rung", line)? as u32,
            success: v
                .get("success")
                .and_then(JsonValue::as_bool)
                .ok_or_else(|| JsonlError { line, msg: "missing `success`".to_string() })?,
        },
        "cache_poison_rollback" => EventKind::CachePoisonRollback,
        "krylov_solve" => EventKind::KrylovSolve {
            iterations: field_u64(&v, "iterations", line)? as u32,
            restarts: field_u64(&v, "restarts", line)? as u32,
            precond_refreshes: field_u64(&v, "precond_refreshes", line)? as u32,
            fallback: v
                .get("fallback")
                .and_then(JsonValue::as_bool)
                .ok_or_else(|| JsonlError { line, msg: "missing `fallback`".to_string() })?,
        },
        other => return Err(JsonlError { line, msg: format!("unknown kind `{other}`") }),
    };
    Ok(Event {
        ts_ns: field_u64(&v, "ts_ns", line)?,
        round: field_u64(&v, "round", line)?,
        lane: field_u64(&v, "lane", line)? as u32,
        t_sim: field_f64(&v, "t_sim", line)?,
        kind,
    })
}

/// Parses a whole JSONL document (blank lines are skipped).
///
/// # Errors
///
/// Returns the first [`JsonlError`] encountered.
pub fn parse_jsonl(text: &str) -> Result<Vec<Event>, JsonlError> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        out.push(event_from_json(line, i + 1)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Event> {
        let kinds = [
            EventKind::RoundStart { width: 3 },
            EventKind::SolveStart { h: 2.5e-9 },
            EventKind::NewtonIter { iteration: 1 },
            EventKind::Factorization,
            EventKind::Refactorization,
            EventKind::JacobianReuse,
            EventKind::BypassedDevices { devices: 9 },
            EventKind::CompanionHit,
            EventKind::SolveEnd { iterations: 4, converged: true },
            EventKind::LteReject { ratio: 1.75, h_retry: 1.25e-9 },
            EventKind::StepSizeChosen { h: 3e-9, ratio: 0.4 },
            EventKind::PointAccepted { h: 2.5e-9 },
            EventKind::LeadAccepted,
            EventKind::LeadDiscarded { reason: DiscardReason::NewtonRejected },
            EventKind::SpeculationAccepted,
            EventKind::SpeculationDiscarded { reason: DiscardReason::PredictionFar },
            EventKind::AdaptiveChoice { forward: false },
            EventKind::StampColorStart { color: 3 },
            EventKind::StampColorEnd { color: 3, devices: 17 },
            EventKind::WorkerLost { lane: 2 },
            EventKind::FallbackSerial,
            EventKind::DeadlineHit,
            EventKind::RecoveryAttempt { h: 3.2e-15 },
            EventKind::RecoveryRung { rung: 3, success: true },
            EventKind::CachePoisonRollback,
            EventKind::KrylovSolve {
                iterations: 12,
                restarts: 1,
                precond_refreshes: 1,
                fallback: false,
            },
            EventKind::RoundEnd { committed: 2 },
        ];
        kinds
            .into_iter()
            .enumerate()
            .map(|(i, kind)| Event {
                ts_ns: 1000 + i as u64,
                round: 1,
                lane: (i % 3) as u32,
                t_sim: 1e-9 * i as f64,
                kind,
            })
            .collect()
    }

    #[test]
    fn every_kind_round_trips_exactly() {
        let events = sample_events();
        let mut buf = Vec::new();
        write_jsonl(&events, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), events.len());
        let back = parse_jsonl(&text).unwrap();
        assert_eq!(back, events);
    }

    #[test]
    fn every_kind_reserializes_to_identical_bytes() {
        // Stronger than value equality: serialize -> parse -> serialize must
        // reproduce every byte, so archived traces can be re-emitted (e.g.
        // by a filter tool) without spurious diffs. Covers all 27 variants
        // plus awkward float shapes (negative, subnormal-ish, integral).
        let mut events = sample_events();
        events.push(Event {
            ts_ns: u64::MAX,
            round: u64::MAX,
            lane: u32::MAX,
            t_sim: -1.5e-300,
            kind: EventKind::LteReject { ratio: 1.0, h_retry: 4.9e-324 },
        });
        for ev in &events {
            let first = event_to_json(ev);
            let parsed = event_from_json(&first, 1).unwrap();
            let second = event_to_json(&parsed);
            assert_eq!(first, second, "re-serialization changed bytes for {:?}", ev.kind);
        }
    }

    #[test]
    fn blank_lines_are_skipped() {
        let events = sample_events();
        let mut buf = Vec::new();
        write_jsonl(&events, &mut buf).unwrap();
        let text = format!("\n{}\n\n", String::from_utf8(buf).unwrap());
        assert_eq!(parse_jsonl(&text).unwrap(), events);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_jsonl("{\"ts_ns\":1}\n{oops}").unwrap_err();
        // First line already fails (missing kind) — line 1.
        assert_eq!(err.line, 1);
        let err = parse_jsonl(
            "{\"ts_ns\":1,\"round\":0,\"lane\":0,\"t_sim\":0,\"kind\":\"factorization\"}\n{oops}",
        )
        .unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn unknown_kind_is_rejected() {
        let line = "{\"ts_ns\":1,\"round\":0,\"lane\":0,\"t_sim\":0,\"kind\":\"mystery\"}";
        assert!(event_from_json(line, 1).unwrap_err().msg.contains("unknown kind"));
    }
}
