//! Integration tests for the richer device models in transient operation:
//! BJT dynamics, MOSFET body effect, and the nonlinear depletion
//! capacitance.

use wavepipe_circuit::{BjtModel, Circuit, DiodeModel, MosModel, Waveform};
use wavepipe_engine::{measure, run_transient, SimOptions};

#[test]
fn bjt_emitter_follower_tracks_input() {
    // Follower: output = input - vbe, gain ~ 1.
    let mut ckt = Circuit::new("follower");
    let vcc = ckt.node("vcc");
    let inp = ckt.node("in");
    let out = ckt.node("out");
    ckt.add_vsource("Vcc", vcc, Circuit::GROUND, Waveform::dc(9.0)).unwrap();
    ckt.add_vsource(
        "Vin",
        inp,
        Circuit::GROUND,
        Waveform::Sin { vo: 3.0, va: 1.0, freq: 1e6, td: 0.0, theta: 0.0 },
    )
    .unwrap();
    ckt.add_bjt("Q1", vcc, inp, out, BjtModel::default()).unwrap();
    ckt.add_resistor("Re", out, Circuit::GROUND, 1e3).unwrap();
    let res = run_transient(&ckt, 1e-9, 3e-6, &SimOptions::default()).unwrap();
    let o = res.unknown_of("out").unwrap();
    let tr = res.trace(o);
    // After startup, output swings ~2 Vpp around ~2.3 V (3.0 - vbe).
    let late: Vec<f64> = tr.iter().filter(|&&(t, _)| t > 1e-6).map(|&(_, v)| v).collect();
    let hi = late.iter().copied().fold(f64::MIN, f64::max);
    let lo = late.iter().copied().fold(f64::MAX, f64::min);
    assert!((hi - lo) > 1.7 && (hi - lo) < 2.2, "swing {}", hi - lo);
    let mid = 0.5 * (hi + lo);
    assert!(mid > 1.9 && mid < 2.7, "follower level {mid} (one vbe below 3 V)");
}

#[test]
fn bjt_ce_stage_inverts_and_amplifies() {
    let mut ckt = Circuit::new("ce");
    let vcc = ckt.node("vcc");
    let b = ckt.node("b");
    let c = ckt.node("c");
    ckt.add_vsource("Vcc", vcc, Circuit::GROUND, Waveform::dc(9.0)).unwrap();
    ckt.add_resistor("Rb1", vcc, b, 47e3).unwrap();
    ckt.add_resistor("Rb2", b, Circuit::GROUND, 10e3).unwrap();
    let sig = ckt.node("sig");
    ckt.add_vsource("Vsig", sig, Circuit::GROUND, Waveform::sin(0.0, 0.005, 1e6)).unwrap();
    ckt.add_capacitor("Cc", sig, b, 1e-7).unwrap();
    let e = ckt.node("e");
    ckt.add_bjt("Q1", c, b, e, BjtModel::default()).unwrap();
    ckt.add_resistor("Rc", vcc, c, 2.2e3).unwrap();
    ckt.add_resistor("Re", e, Circuit::GROUND, 1e3).unwrap();
    ckt.add_capacitor("Ce", e, Circuit::GROUND, 1e-6).unwrap();
    let res = run_transient(&ckt, 2e-9, 4e-6, &SimOptions::default()).unwrap();
    let ci = res.unknown_of("c").unwrap();
    let late: Vec<(f64, f64)> = res.trace(ci).into_iter().filter(|&(t, _)| t > 2e-6).collect();
    let hi = late.iter().map(|&(_, v)| v).fold(f64::MIN, f64::max);
    let lo = late.iter().map(|&(_, v)| v).fold(f64::MAX, f64::min);
    let gain = (hi - lo) / (2.0 * 0.005);
    // gm*Rc with re' degeneration ... bypassed emitter: gm ~ Ic/VT,
    // Ic ~ (1.5-0.7)/1k ~ 0.8 mA -> gm ~ 31 mS -> gain ~ 68. Accept wide.
    assert!(gain > 25.0 && gain < 120.0, "gain {gain}");
}

#[test]
fn body_effect_slows_the_stacked_nand_pulldown() {
    // Same NAND pull-down stack with gamma 0 vs gamma 0.6: the body effect
    // raises the stacked device's threshold, weakening the pull-down and
    // slowing the falling output edge.
    let fall = |gamma: f64| -> f64 {
        let mut ckt = Circuit::new("nand pd");
        let vdd = ckt.node("vdd");
        ckt.add_vsource("Vdd", vdd, Circuit::GROUND, Waveform::dc(3.3)).unwrap();
        let inp = ckt.node("in");
        ckt.add_vsource(
            "Vin",
            inp,
            Circuit::GROUND,
            Waveform::pulse(0.0, 3.3, 1e-9, 0.1e-9, 0.1e-9, 20e-9, 0.0),
        )
        .unwrap();
        let out = ckt.node("out");
        let stack = ckt.node("x");
        let nmos = MosModel { kp: 1e-4, w: 20e-6, l: 1e-6, gamma, phi: 0.65, ..MosModel::nmos() };
        // Pull-up: resistor load for simplicity.
        ckt.add_resistor("Rl", vdd, out, 10e3).unwrap();
        // Stack: upper device's bulk at ground (sees body effect as `x` rises).
        ckt.add_mosfet4("MnA", out, inp, stack, Circuit::GROUND, nmos.clone()).unwrap();
        ckt.add_mosfet("MnB", stack, vdd, Circuit::GROUND, nmos).unwrap();
        ckt.add_capacitor("Cl", out, Circuit::GROUND, 100e-15).unwrap();
        let res = run_transient(&ckt, 0.02e-9, 15e-9, &SimOptions::default()).unwrap();
        let o = res.unknown_of("out").unwrap();
        measure::fall_time(&res.trace(o), 0.0, 3.3, 0).expect("output falls")
    };
    let no_body = fall(0.0);
    let with_body = fall(0.6);
    assert!(
        with_body > no_body * 1.02,
        "body effect must slow the edge: {with_body:e} vs {no_body:e}"
    );
}

#[test]
fn depletion_capacitance_slows_reverse_recovery_vs_linear() {
    // A pulsed diode with CJ0: the nonlinear depletion capacitance is larger
    // near zero bias than at reverse bias, so the response differs from a
    // fixed linear capacitor of the same CJ0.
    let run = |cj0: f64| {
        let mut ckt = Circuit::new("jcap");
        let a = ckt.node("a");
        let d = ckt.node("d");
        ckt.add_vsource(
            "V1",
            a,
            Circuit::GROUND,
            Waveform::pulse(-5.0, 0.5, 1e-9, 0.2e-9, 0.2e-9, 10e-9, 0.0),
        )
        .unwrap();
        ckt.add_resistor("R1", a, d, 10e3).unwrap();
        ckt.add_diode("D1", d, Circuit::GROUND, DiodeModel { cj0, ..DiodeModel::default() })
            .unwrap();
        run_transient(&ckt, 0.05e-9, 20e-9, &SimOptions::default()).unwrap()
    };
    let with_cap = run(2e-12);
    let no_cap = run(0.0);
    let di = with_cap.unknown_of("d").unwrap();
    // With junction capacitance the node moves through a visible RC ramp;
    // without it the (reverse-biased) node jumps with the source.
    let t_probe = 1.6e-9; // right after the rising edge
    let v_with = with_cap.sample(di, t_probe);
    let v_without = no_cap.sample(no_cap.unknown_of("d").unwrap(), t_probe);
    assert!(v_with < v_without - 0.2, "depletion cap must slow the node: {v_with} vs {v_without}");
}

#[test]
fn depletion_capacitance_charge_is_conservative() {
    // Drive a diode junction with a symmetric triangle below turn-on; the
    // charge-based companion must bring the node back with no spurious
    // drift (charge conservation of the q(v) formulation).
    let mut ckt = Circuit::new("qcons");
    let a = ckt.node("a");
    let d = ckt.node("d");
    ckt.add_vsource(
        "V1",
        a,
        Circuit::GROUND,
        Waveform::pwl(vec![
            (0.0, -3.0),
            (10e-9, -0.5),
            (20e-9, -3.0),
            (30e-9, -0.5),
            (40e-9, -3.0),
            (70e-9, -3.0),
        ]),
    )
    .unwrap();
    ckt.add_resistor("R1", a, d, 1e3).unwrap();
    ckt.add_diode("D1", d, Circuit::GROUND, DiodeModel { cj0: 5e-12, ..DiodeModel::default() })
        .unwrap();
    let res = run_transient(&ckt, 0.1e-9, 70e-9, &SimOptions::default()).unwrap();
    let di = res.unknown_of("d").unwrap();
    // The source returned to -3 V at 40 ns and held; after several RC time
    // constants the junction must settle there with no spurious drift.
    let v_end = res.sample(di, 70e-9);
    assert!((v_end + 3.0).abs() < 0.05, "junction did not return: {v_end}");
}

#[test]
fn measure_functions_compose_with_results() {
    // Inverter-chain propagation delay via the measure module.
    let b = wavepipe_circuit::generators::inverter_chain(4);
    let res = run_transient(&b.circuit, b.tstep, b.tstop, &SimOptions::default()).unwrap();
    let vin = res.unknown_of("in").unwrap();
    let vout = res.unknown_of("s3").unwrap();
    let vdd = wavepipe_circuit::generators::VDD;
    // Even chain: output follows input polarity after 4 inversions.
    let d = measure::delay(
        &res.trace(vin),
        vdd / 2.0,
        measure::Edge::Rising,
        &res.trace(vout),
        vdd / 2.0,
        measure::Edge::Rising,
        0,
    )
    .expect("propagation delay");
    assert!(d > 0.0 && d < 5e-9, "chain delay {d:e}");
    let rt = measure::rise_time(&res.trace(vout), 0.0, vdd, 0).expect("rise time");
    assert!(rt > 1e-12 && rt < 2e-9, "rise time {rt:e}");
}

#[test]
fn uic_starts_from_declared_initial_conditions() {
    // A charged capacitor discharging through a resistor: with UIC the run
    // starts at v0 and decays exponentially; with the DC operating point it
    // would start (and stay) at 0.
    let mut ckt = Circuit::new("uic rc");
    let a = ckt.node("a");
    ckt.add_capacitor_ic("C1", a, Circuit::GROUND, 1e-9, 5.0).unwrap();
    ckt.add_resistor("R1", a, Circuit::GROUND, 1e3).unwrap();

    let opts = SimOptions { use_ic: true, ..SimOptions::default() };
    let res = run_transient(&ckt, 1e-8, 5e-6, &opts).unwrap();
    let ai = res.unknown_of("a").unwrap();
    let tau = 1e-6;
    assert!((res.sample(ai, 0.0) - 5.0).abs() < 1e-3, "starts at the IC");
    for &t in &[0.5e-6_f64, 1e-6, 2e-6] {
        let exact = 5.0 * (-t / tau).exp();
        let got = res.sample(ai, t);
        assert!((got - exact).abs() < 0.03, "t={t:e}: {got} vs {exact}");
    }

    // Without UIC, the DC operating point discharges the capacitor.
    let res_dc = run_transient(&ckt, 1e-8, 1e-6, &SimOptions::default()).unwrap();
    assert!(res_dc.sample(res_dc.unknown_of("a").unwrap(), 0.0).abs() < 1e-6);
}

#[test]
fn uic_rings_an_lc_tank_from_a_charged_capacitor() {
    // Charged cap in parallel with an RL loop: with UIC the tank starts at
    // the capacitor's voltage and rings, driving current through the
    // inductor branch.
    let mut ckt = Circuit::new("uic rl kick");
    let a = ckt.node("a");
    ckt.add_capacitor_ic("Ck", a, Circuit::GROUND, 1e-9, 2.0).unwrap();
    ckt.add_inductor("L1", a, Circuit::GROUND, 1e-6).unwrap();
    ckt.add_resistor("R1", a, Circuit::GROUND, 100.0).unwrap();
    let opts = SimOptions { use_ic: true, ..SimOptions::default() };
    let res = run_transient(&ckt, 1e-9, 1e-6, &opts).unwrap();
    let ai = res.unknown_of("a").unwrap();
    assert!((res.sample(ai, 0.0) - 2.0).abs() < 1e-2, "cap IC applied");
    // LC ringing at f0 = 1/(2 pi sqrt(LC)) ~ 5.03 MHz must appear.
    let il = res.branch_of("L1").expect("inductor branch");
    assert!(res.peak(il) > 1e-3, "inductor current rings up");
}
