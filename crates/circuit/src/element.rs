//! Circuit elements (devices) and their model parameter sets.
//!
//! Elements reference circuit nodes by [`Node`] id; node 0 is ground. The
//! numerical behaviour (stamps, companion models, linearisation) lives in
//! `wavepipe-engine`; this module is the pure description.

use crate::waveform::Waveform;
use std::fmt;

/// A circuit node identifier. `Node::GROUND` (index 0) is the reference node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Node(pub(crate) usize);

impl Node {
    /// The ground (reference) node.
    pub const GROUND: Node = Node(0);

    /// Raw index of this node (0 = ground; signal nodes start at 1).
    pub fn index(self) -> usize {
        self.0
    }

    /// Returns `true` for the ground node.
    pub fn is_ground(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_ground() {
            write!(f, "0")
        } else {
            write!(f, "n{}", self.0)
        }
    }
}

/// Diode model parameters (Shockley model with optional nonlinear
/// depletion capacitance).
#[derive(Debug, Clone, PartialEq)]
pub struct DiodeModel {
    /// Saturation current `IS` (A). Default `1e-14`.
    pub is: f64,
    /// Emission coefficient `N`. Default `1.0`.
    pub n: f64,
    /// Zero-bias junction capacitance `CJ0` (F). When nonzero the junction
    /// carries the standard voltage-dependent depletion capacitance
    /// `CJ0 / (1 - v/VJ)^M` (with the usual forward-bias linear extension
    /// beyond `FC*VJ`). Default `0.0` (no capacitance).
    pub cj0: f64,
    /// Junction built-in potential `VJ` (V). Default `1.0`.
    pub vj: f64,
    /// Grading coefficient `M`. Default `0.5` (abrupt junction).
    pub m: f64,
    /// Forward-bias depletion-capacitance coefficient `FC`. Default `0.5`.
    pub fc: f64,
    /// Junction temperature in °C. Scales the thermal voltage
    /// `Vt = n·k·T/q` linearly with absolute temperature relative to the
    /// nominal 27 °C (saturation-current temperature dependence is not
    /// modeled). Default `27.0` — at the default the lowered device is
    /// bit-identical to the pre-temperature model.
    pub temp_c: f64,
}

impl Default for DiodeModel {
    fn default() -> Self {
        DiodeModel { is: 1e-14, n: 1.0, cj0: 0.0, vj: 1.0, m: 0.5, fc: 0.5, temp_c: 27.0 }
    }
}

/// MOSFET channel polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MosPolarity {
    /// N-channel.
    Nmos,
    /// P-channel.
    Pmos,
}

/// Level-1 (Shichman–Hodges) MOSFET model parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct MosModel {
    /// Channel polarity.
    pub polarity: MosPolarity,
    /// Zero-bias threshold voltage `VTO` (V); positive for NMOS,
    /// negative for PMOS. Default `0.7` / `-0.7`.
    pub vt0: f64,
    /// Transconductance parameter `KP` (A/V^2). Default `2e-5`.
    pub kp: f64,
    /// Channel-length modulation `LAMBDA` (1/V). Default `0.0`.
    pub lambda: f64,
    /// Channel width (m). Default `10e-6`.
    pub w: f64,
    /// Channel length (m). Default `1e-6`.
    pub l: f64,
    /// Gate-source capacitance (F), stamped as a linear capacitor.
    /// Default `1e-15`.
    pub cgs: f64,
    /// Gate-drain capacitance (F), stamped as a linear capacitor.
    /// Default `1e-15`.
    pub cgd: f64,
    /// Body-effect coefficient `GAMMA` (V^0.5). `0` disables the body
    /// effect. Default `0.0`.
    pub gamma: f64,
    /// Surface potential `PHI` (V). Default `0.65`.
    pub phi: f64,
}

impl MosModel {
    /// Default NMOS model.
    pub fn nmos() -> Self {
        MosModel {
            polarity: MosPolarity::Nmos,
            vt0: 0.7,
            kp: 2e-5,
            lambda: 0.0,
            w: 10e-6,
            l: 1e-6,
            cgs: 1e-15,
            cgd: 1e-15,
            gamma: 0.0,
            phi: 0.65,
        }
    }

    /// Default PMOS model.
    pub fn pmos() -> Self {
        MosModel { polarity: MosPolarity::Pmos, vt0: -0.7, ..MosModel::nmos() }
    }

    /// Effective transconductance factor `beta = KP * W / L`.
    pub fn beta(&self) -> f64 {
        self.kp * self.w / self.l
    }
}

/// Ebers–Moll BJT model parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct BjtModel {
    /// `true` for NPN, `false` for PNP.
    pub npn: bool,
    /// Transport saturation current `IS` (A). Default `1e-16`.
    pub is: f64,
    /// Forward beta `BF`. Default `100.0`.
    pub bf: f64,
    /// Reverse beta `BR`. Default `1.0`.
    pub br: f64,
}

impl Default for BjtModel {
    fn default() -> Self {
        BjtModel { npn: true, is: 1e-16, bf: 100.0, br: 1.0 }
    }
}

/// A circuit element. Two-terminal conventions: current flows from `p`
/// (positive) to `n` (negative) through the element.
#[derive(Debug, Clone, PartialEq)]
pub enum Element {
    /// Linear resistor.
    Resistor {
        /// Instance name (e.g. `R1`).
        name: String,
        /// Positive terminal.
        p: Node,
        /// Negative terminal.
        n: Node,
        /// Resistance in ohms (must be > 0).
        resistance: f64,
    },
    /// Linear capacitor.
    Capacitor {
        /// Instance name.
        name: String,
        /// Positive terminal.
        p: Node,
        /// Negative terminal.
        n: Node,
        /// Capacitance in farads (must be > 0).
        capacitance: f64,
        /// Optional initial voltage for `UIC`-style startup.
        initial_voltage: Option<f64>,
    },
    /// Linear inductor (adds one branch-current unknown).
    Inductor {
        /// Instance name.
        name: String,
        /// Positive terminal.
        p: Node,
        /// Negative terminal.
        n: Node,
        /// Inductance in henries (must be > 0).
        inductance: f64,
        /// Optional initial current.
        initial_current: Option<f64>,
    },
    /// Independent voltage source (adds one branch-current unknown).
    VoltageSource {
        /// Instance name.
        name: String,
        /// Positive terminal.
        p: Node,
        /// Negative terminal.
        n: Node,
        /// Time-dependent value (V).
        waveform: Waveform,
        /// Small-signal magnitude for AC analysis (V); `0` = quiet source.
        ac_magnitude: f64,
    },
    /// Independent current source; current flows from `p` through the source
    /// to `n` (i.e. it *pulls* current out of node `p`).
    CurrentSource {
        /// Instance name.
        name: String,
        /// Positive terminal.
        p: Node,
        /// Negative terminal.
        n: Node,
        /// Time-dependent value (A).
        waveform: Waveform,
        /// Small-signal magnitude for AC analysis (A); `0` = quiet source.
        ac_magnitude: f64,
    },
    /// Semiconductor diode; anode `p`, cathode `n`.
    Diode {
        /// Instance name.
        name: String,
        /// Anode.
        p: Node,
        /// Cathode.
        n: Node,
        /// Model parameters.
        model: DiodeModel,
    },
    /// Level-1 MOSFET with explicit bulk terminal.
    Mosfet {
        /// Instance name.
        name: String,
        /// Drain.
        d: Node,
        /// Gate.
        g: Node,
        /// Source.
        s: Node,
        /// Bulk (substrate). Tie to the source for a 3-terminal device.
        b: Node,
        /// Model parameters.
        model: MosModel,
    },
    /// Ebers–Moll BJT.
    Bjt {
        /// Instance name.
        name: String,
        /// Collector.
        c: Node,
        /// Base.
        b: Node,
        /// Emitter.
        e: Node,
        /// Model parameters.
        model: BjtModel,
    },
    /// Voltage-controlled voltage source `E` (adds one branch unknown).
    Vcvs {
        /// Instance name.
        name: String,
        /// Positive output terminal.
        p: Node,
        /// Negative output terminal.
        n: Node,
        /// Positive controlling node.
        cp: Node,
        /// Negative controlling node.
        cn: Node,
        /// Voltage gain.
        gain: f64,
    },
    /// Voltage-controlled current source `G`.
    Vccs {
        /// Instance name.
        name: String,
        /// Positive output terminal (current exits here).
        p: Node,
        /// Negative output terminal.
        n: Node,
        /// Positive controlling node.
        cp: Node,
        /// Negative controlling node.
        cn: Node,
        /// Transconductance (A/V).
        gm: f64,
    },
}

impl Element {
    /// Instance name of the element.
    pub fn name(&self) -> &str {
        match self {
            Element::Resistor { name, .. }
            | Element::Capacitor { name, .. }
            | Element::Inductor { name, .. }
            | Element::VoltageSource { name, .. }
            | Element::CurrentSource { name, .. }
            | Element::Diode { name, .. }
            | Element::Mosfet { name, .. }
            | Element::Bjt { name, .. }
            | Element::Vcvs { name, .. }
            | Element::Vccs { name, .. } => name,
        }
    }

    /// All nodes this element touches (with repetition preserved).
    pub fn nodes(&self) -> Vec<Node> {
        match *self {
            Element::Resistor { p, n, .. }
            | Element::Capacitor { p, n, .. }
            | Element::Inductor { p, n, .. }
            | Element::VoltageSource { p, n, .. }
            | Element::CurrentSource { p, n, .. }
            | Element::Diode { p, n, .. } => vec![p, n],
            Element::Mosfet { d, g, s, b, .. } => vec![d, g, s, b],
            Element::Bjt { c, b, e, .. } => vec![c, b, e],
            Element::Vcvs { p, n, cp, cn, .. } | Element::Vccs { p, n, cp, cn, .. } => {
                vec![p, n, cp, cn]
            }
        }
    }

    /// Returns `true` if the element's current-voltage relation is nonlinear
    /// (i.e. it participates in Newton linearisation).
    pub fn is_nonlinear(&self) -> bool {
        matches!(self, Element::Diode { .. } | Element::Mosfet { .. } | Element::Bjt { .. })
    }

    /// Returns `true` if the element introduces an extra MNA branch-current
    /// unknown (group-2 element).
    pub fn has_branch_current(&self) -> bool {
        matches!(
            self,
            Element::VoltageSource { .. } | Element::Inductor { .. } | Element::Vcvs { .. }
        )
    }

    /// Returns `true` if the element stores energy (contributes dynamics).
    pub fn is_reactive(&self) -> bool {
        match self {
            Element::Capacitor { .. } | Element::Inductor { .. } => true,
            Element::Diode { model, .. } => model.cj0 > 0.0,
            Element::Mosfet { model, .. } => model.cgs > 0.0 || model.cgd > 0.0,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_properties() {
        assert!(Node::GROUND.is_ground());
        assert_eq!(Node::GROUND.index(), 0);
        assert_eq!(Node::GROUND.to_string(), "0");
    }

    #[test]
    fn element_nodes_and_names() {
        let r =
            Element::Resistor { name: "R1".into(), p: Node(1), n: Node::GROUND, resistance: 1e3 };
        assert_eq!(r.name(), "R1");
        assert_eq!(r.nodes(), vec![Node(1), Node::GROUND]);
        assert!(!r.is_nonlinear());
        assert!(!r.has_branch_current());
    }

    #[test]
    fn branch_current_elements() {
        let v = Element::VoltageSource {
            name: "V1".into(),
            p: Node(1),
            n: Node::GROUND,
            waveform: Waveform::dc(1.0),
            ac_magnitude: 0.0,
        };
        let l = Element::Inductor {
            name: "L1".into(),
            p: Node(1),
            n: Node(2),
            inductance: 1e-9,
            initial_current: None,
        };
        assert!(v.has_branch_current());
        assert!(l.has_branch_current());
        assert!(l.is_reactive());
    }

    #[test]
    fn nonlinear_flags() {
        let d = Element::Diode {
            name: "D1".into(),
            p: Node(1),
            n: Node::GROUND,
            model: DiodeModel::default(),
        };
        assert!(d.is_nonlinear());
        assert!(!d.is_reactive());
        let d2 = Element::Diode {
            name: "D2".into(),
            p: Node(1),
            n: Node::GROUND,
            model: DiodeModel { cj0: 1e-12, ..DiodeModel::default() },
        };
        assert!(d2.is_reactive());
    }

    #[test]
    fn mos_model_defaults() {
        let n = MosModel::nmos();
        assert_eq!(n.polarity, MosPolarity::Nmos);
        assert!(n.vt0 > 0.0);
        let p = MosModel::pmos();
        assert_eq!(p.polarity, MosPolarity::Pmos);
        assert!(p.vt0 < 0.0);
        assert!((n.beta() - 2e-5 * 10.0).abs() < 1e-18);
    }

    #[test]
    fn mosfet_is_reactive_with_caps() {
        let m = Element::Mosfet {
            name: "M1".into(),
            d: Node(1),
            g: Node(2),
            s: Node::GROUND,
            b: Node::GROUND,
            model: MosModel::nmos(),
        };
        assert!(m.is_reactive());
        assert!(m.is_nonlinear());
        assert_eq!(m.nodes().len(), 4);
    }
}
