//! Run a SPICE-style netlist through WavePipe from the command line.
//!
//! Usage:
//!
//! ```text
//! cargo run --release --example netlist_runner -- <deck.sp> [scheme] [threads] \
//!     [--trace <path>] [--trace-format jsonl|chrome] \
//!     [--metrics pretty|json|prom] [--metrics-every <ms>]
//! ```
//!
//! where `scheme` is one of `serial`, `backward`, `forward`, `combined`,
//! `adaptive` (default `backward`) and `threads` defaults to 2. `.dc` and
//! `.ac` directives in the deck are honoured before the transient. With no arguments, a
//! built-in demonstration deck (diode clipper) is simulated. The waveform of
//! every node is written next to the deck as `<deck>.csv`.
//!
//! `--trace` attaches a recording probe and writes the event stream to
//! `<path>`: `chrome` (default) produces a Chrome trace-event JSON document
//! (load it in `chrome://tracing` or Perfetto to *see* the per-lane
//! pipelining overlap), `jsonl` one JSON object per event for scripted
//! analysis. A telemetry summary (histograms, lane utilisation) is printed
//! either way.
//!
//! `--metrics` attaches a live [`MetricsRegistry`] and prints the end-of-run
//! snapshot as a human table (`pretty`), JSON (`json`) or Prometheus text
//! exposition (`prom`). `--metrics-every <ms>` additionally starts a sampler
//! thread that prints the counter *deltas* of each interval while the
//! simulation runs — a live progress ticker driven by the same registry.
//!
//! On failure the process exits with a cause-specific code so scripted
//! sweeps can branch without parsing stderr: `2` Newton no-convergence
//! (with the solver's forensic report on stderr), `3` timestep underflow,
//! `4` numerical blowup, `5` singular matrix, `6` deadline/cancellation,
//! `7` lost worker, `1` everything else.

use std::path::PathBuf;
use std::sync::Arc;
use wavepipe::circuit::parse_netlist;
use wavepipe::core::{run_wavepipe, Scheme, WavePipeOptions};
use wavepipe::engine::{run_ac, run_dc_sweep, spectrum, EngineError};
use wavepipe::telemetry::{
    chrome, jsonl, MetricsHandle, MetricsRegistry, ProbeHandle, RecordingProbe,
};

/// Cause-specific process exit code, so scripted sweeps can tell a
/// convergence failure from a timestep underflow or an expired budget
/// without parsing stderr.
fn exit_code(e: &(dyn std::error::Error + 'static)) -> i32 {
    let Some(e) = e.downcast_ref::<EngineError>() else { return 1 };
    match e {
        EngineError::NoConvergence { .. } => 2,
        EngineError::TimestepTooSmall { .. } => 3,
        EngineError::NumericalBlowup { .. } => 4,
        EngineError::Linear(_) => 5,
        EngineError::DeadlineExceeded { .. } | EngineError::Cancelled { .. } => 6,
        EngineError::WorkerLost { .. } => 7,
        _ => 1,
    }
}

fn main() {
    if let Err(e) = run() {
        eprintln!("error   : {e}");
        // Convergence failures carry solver forensics (worst-residual node,
        // iteration history, recovery rungs tried) — print them in full.
        if let Some(EngineError::NoConvergence { report, .. }) = e.downcast_ref::<EngineError>() {
            eprintln!("detail  : {report}");
        }
        std::process::exit(exit_code(e.as_ref()));
    }
}

const DEMO_DECK: &str = "\
diode clipper demo
Vin in 0 SIN(0 3 2meg)
R1 in mid 1k
D1 mid 0 DCLIP
D2 0 mid DCLIP
C1 mid 0 100p
.model DCLIP D (IS=1e-14 N=1.2 CJ0=2p)
.tran 5n 2u
.end
";

/// `jsonl` or `chrome` trace output.
enum TraceFormat {
    Jsonl,
    Chrome,
}

/// End-of-run metrics rendering.
enum MetricsFormat {
    Pretty,
    Json,
    Prom,
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    // Split flag arguments (`--trace <path>`, `--trace-format <fmt>`,
    // `--metrics <fmt>`, `--metrics-every <ms>`) from the positional
    // deck/scheme/threads arguments.
    let mut trace_path: Option<PathBuf> = None;
    let mut trace_format = TraceFormat::Chrome;
    let mut metrics_format: Option<MetricsFormat> = None;
    let mut metrics_every_ms: Option<u64> = None;
    let mut args: Vec<String> = vec![std::env::args().next().unwrap_or_default()];
    let mut raw = std::env::args().skip(1);
    while let Some(a) = raw.next() {
        match a.as_str() {
            "--trace" => {
                let p = raw.next().ok_or("--trace needs a file path")?;
                trace_path = Some(PathBuf::from(p));
            }
            "--trace-format" => {
                trace_format = match raw.next().as_deref() {
                    Some("jsonl") => TraceFormat::Jsonl,
                    Some("chrome") => TraceFormat::Chrome,
                    other => {
                        return Err(format!(
                            "--trace-format must be `jsonl` or `chrome`, got {other:?}"
                        )
                        .into())
                    }
                };
            }
            "--metrics" => {
                metrics_format = Some(match raw.next().as_deref() {
                    Some("pretty") => MetricsFormat::Pretty,
                    Some("json") => MetricsFormat::Json,
                    Some("prom") => MetricsFormat::Prom,
                    other => {
                        return Err(format!(
                            "--metrics must be `pretty`, `json` or `prom`, got {other:?}"
                        )
                        .into())
                    }
                });
            }
            "--metrics-every" => {
                let ms = raw.next().ok_or("--metrics-every needs an interval in ms")?;
                metrics_every_ms = Some(ms.parse().map_err(|_| format!("bad interval `{ms}`"))?);
            }
            _ => args.push(a),
        }
    }
    let (deck_text, out_path) = match args.get(1) {
        Some(path) => {
            let text = std::fs::read_to_string(path)?;
            (text, PathBuf::from(format!("{path}.csv")))
        }
        None => {
            println!("no deck given — using the built-in diode clipper demo\n");
            (DEMO_DECK.to_string(), PathBuf::from("clipper_demo.csv"))
        }
    };
    let scheme = match args.get(2).map(String::as_str) {
        None | Some("backward") => Scheme::Backward,
        Some("serial") => Scheme::Serial,
        Some("forward") => Scheme::Forward,
        Some("combined") => Scheme::Combined,
        Some("adaptive") => Scheme::Adaptive,
        Some(other) => return Err(format!("unknown scheme `{other}`").into()),
    };
    let threads: usize = args.get(3).map_or(Ok(2), |s| s.parse())?;

    let parsed = parse_netlist(&deck_text)?;

    // Secondary analyses first, if requested by the deck.
    if let Some(dc) = &parsed.dc {
        let sweep = run_dc_sweep(&parsed.circuit, &dc.source, &dc.values(), &Default::default())?;
        println!(".dc     : swept {} over {} points", dc.source, sweep.values().len());
    }
    if let Some(ac) = &parsed.ac {
        let res = run_ac(&parsed.circuit, &ac.frequencies(), &Default::default())?;
        println!(
            ".ac     : {} frequency points from {:.3e} to {:.3e} Hz",
            res.frequencies().len(),
            ac.fstart,
            ac.fstop
        );
    }

    let tran = parsed.tran.ok_or("deck has no .tran directive — add `.tran tstep tstop`")?;
    println!("circuit : {}", parsed.circuit.summary());
    println!("analysis: .tran {:.3e} {:.3e} ({scheme}, {threads} threads)", tran.tstep, tran.tstop);

    let mut opts = WavePipeOptions::new(scheme, threads);
    let probe = trace_path.as_ref().map(|_| RecordingProbe::shared());
    if let Some(p) = &probe {
        opts =
            opts.with_probe(ProbeHandle::new(Arc::clone(p) as Arc<dyn wavepipe::telemetry::Probe>));
    }
    let registry =
        (metrics_format.is_some() || metrics_every_ms.is_some()).then(MetricsRegistry::shared);
    if let Some(reg) = &registry {
        opts = opts.with_metrics(MetricsHandle::new(Arc::clone(reg)));
    }

    // Live progress ticker: a sampler thread snapshots the shared registry
    // every interval and prints the counter deltas — the registry is
    // lock-light and snapshot-safe mid-run, so this never perturbs the
    // solver lanes.
    let sampler = metrics_every_ms.map(|ms| {
        let reg = Arc::clone(registry.as_ref().expect("registry exists when sampling"));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            let interval = std::time::Duration::from_millis(ms.max(1));
            let mut prev = reg.snapshot();
            let mut tick = 0u64;
            while !stop_flag.load(std::sync::atomic::Ordering::Relaxed) {
                std::thread::sleep(interval);
                let snap = reg.snapshot();
                let d = snap.diff(&prev);
                tick += 1;
                println!(
                    "metrics : [{tick:>4}] +{} points  +{} solves  +{} newton iters  \
                     +{} lte rejects  h={:.3e}",
                    d.counter("points_accepted"),
                    d.counter("solves"),
                    d.counter("newton_iterations"),
                    d.counter("lte_rejects"),
                    snap.gauges.iter().find(|(n, _)| *n == "current_h").map_or(0.0, |(_, v)| *v),
                );
                prev = snap;
            }
        });
        (stop, handle)
    });

    let report = run_wavepipe(&parsed.circuit, tran.tstep, tran.tstop, &opts)?;

    if let Some((stop, handle)) = sampler {
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        let _ = handle.join();
    }
    println!("run     : {}", report.summary());

    if let (Some(fmt), Some(reg)) = (&metrics_format, &registry) {
        let snap = reg.snapshot();
        match fmt {
            MetricsFormat::Pretty => print!("{}", snap.to_pretty()),
            MetricsFormat::Json => println!("{}", snap.to_json()),
            MetricsFormat::Prom => print!("{}", snap.to_prometheus()),
        }
    }

    if let (Some(path), Some(probe)) = (&trace_path, &probe) {
        use std::io::Write as _;
        let events = probe.events();
        let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
        match trace_format {
            TraceFormat::Jsonl => jsonl::write_jsonl(&events, &mut file)?,
            TraceFormat::Chrome => chrome::write_chrome_trace(&events, &mut file)?,
        }
        file.flush()?;
        println!("trace   : {} ({} events)", path.display(), events.len());
        if let Some(summary) = &report.telemetry {
            print!("{summary}");
        }
    }

    // Distortion report when the deck has a sine-driven node (demo decks).
    if let Some(out) = report.result.unknown_of("mid") {
        let fa = spectrum::fourier(&report.result.trace(out), 2e6, 2, 5);
        println!(
            "fourier : v(mid) fundamental {:.3} V, THD {:.1}%",
            fa.harmonics[0].amplitude,
            fa.thd * 100.0
        );
    }

    // Dump every signal node to CSV.
    let columns: Vec<(String, usize)> = parsed
        .circuit
        .signal_node_names()
        .filter_map(|n| report.result.unknown_of(n).map(|u| (n.to_string(), u)))
        .collect();
    std::fs::write(&out_path, report.result.to_csv(&columns))?;
    println!(
        "wrote   : {} ({} points x {} nodes)",
        out_path.display(),
        report.result.len(),
        columns.len()
    );
    Ok(())
}
