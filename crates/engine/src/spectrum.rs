//! Spectral analysis of transient waveforms: windowed FFT over resampled
//! traces, harmonic extraction, and total harmonic distortion — the `.four`
//! analysis of classic SPICE.

/// A single spectral line.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpectralLine {
    /// Frequency (Hz).
    pub frequency: f64,
    /// Amplitude (peak, same units as the waveform).
    pub amplitude: f64,
    /// Phase (degrees).
    pub phase_deg: f64,
}

/// Result of a Fourier analysis at a fundamental frequency.
#[derive(Debug, Clone)]
pub struct FourierAnalysis {
    /// DC component.
    pub dc: f64,
    /// Harmonics 1..=n of the fundamental (index 0 = fundamental).
    pub harmonics: Vec<SpectralLine>,
    /// Total harmonic distortion as a fraction of the fundamental
    /// (`sqrt(sum A_k^2, k>=2) / A_1`).
    pub thd: f64,
}

/// In-place radix-2 decimation-in-time FFT on interleaved complex data.
///
/// `data` holds `(re, im)` pairs; its length must be a power of two.
///
/// # Panics
///
/// Panics if the length is not a power of two.
pub fn fft(data: &mut [(f64, f64)]) {
    let n = data.len();
    assert!(n.is_power_of_two(), "fft length must be a power of two, got {n}");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            data.swap(i, j);
        }
    }
    // Butterflies.
    let mut len = 2;
    while len <= n {
        let ang = -2.0 * std::f64::consts::PI / len as f64;
        let (wr, wi) = (ang.cos(), ang.sin());
        for start in (0..n).step_by(len) {
            let (mut cr, mut ci) = (1.0_f64, 0.0_f64);
            for k in 0..len / 2 {
                let a = data[start + k];
                let b = data[start + k + len / 2];
                let tr = b.0 * cr - b.1 * ci;
                let ti = b.0 * ci + b.1 * cr;
                data[start + k] = (a.0 + tr, a.1 + ti);
                data[start + k + len / 2] = (a.0 - tr, a.1 - ti);
                let ncr = cr * wr - ci * wi;
                ci = cr * wi + ci * wr;
                cr = ncr;
            }
        }
        len <<= 1;
    }
}

/// Resamples a `(time, value)` trace onto `n` uniform points over
/// `[t0, t1)` by linear interpolation.
///
/// # Panics
///
/// Panics if the trace has fewer than 2 points or the window is empty.
pub fn resample(trace: &[(f64, f64)], t0: f64, t1: f64, n: usize) -> Vec<f64> {
    assert!(trace.len() >= 2, "resample needs at least two points");
    assert!(t1 > t0, "empty resample window");
    let sample = |t: f64| -> f64 {
        let k = trace.partition_point(|&(tt, _)| tt <= t);
        if k == 0 {
            return trace[0].1;
        }
        if k >= trace.len() {
            return trace[trace.len() - 1].1;
        }
        let (ta, va) = trace[k - 1];
        let (tb, vb) = trace[k];
        va + (vb - va) * (t - ta) / (tb - ta)
    };
    (0..n).map(|k| sample(t0 + (t1 - t0) * k as f64 / n as f64)).collect()
}

/// Fourier analysis of a trace at the given fundamental, over the last
/// `cycles` full periods before the trace's end (skipping the startup
/// transient), with `n_harmonics` harmonics reported.
///
/// Mirrors SPICE's `.four`: the window is an exact number of periods so no
/// spectral window function is needed.
///
/// ```
/// use wavepipe_engine::spectrum::fourier;
///
/// // Two cycles of a clean 1 MHz sine.
/// let trace: Vec<(f64, f64)> = (0..=400)
///     .map(|k| {
///         let t = 2e-6 * k as f64 / 400.0;
///         (t, (std::f64::consts::TAU * 1e6 * t).sin())
///     })
///     .collect();
/// let fa = fourier(&trace, 1e6, 2, 3);
/// assert!((fa.harmonics[0].amplitude - 1.0).abs() < 1e-2);
/// assert!(fa.thd < 1e-2);
/// ```
///
/// # Panics
///
/// Panics if the trace is shorter than the requested window.
pub fn fourier(
    trace: &[(f64, f64)],
    fundamental: f64,
    cycles: usize,
    n_harmonics: usize,
) -> FourierAnalysis {
    assert!(fundamental > 0.0 && cycles >= 1 && n_harmonics >= 1);
    let period = 1.0 / fundamental;
    let t_end = trace.last().expect("non-empty trace").0;
    let t0 = t_end - cycles as f64 * period;
    assert!(t0 >= trace[0].0 - 1e-15, "trace too short: needs {} cycles of {}s", cycles, period);
    // Power-of-two length with >= 32 samples per cycle and enough bins.
    let mut n = 32usize * cycles;
    while n < 4 * n_harmonics * cycles {
        n <<= 1;
    }
    let n = n.next_power_of_two();
    let samples = resample(trace, t0, t_end, n);
    let mut data: Vec<(f64, f64)> = samples.iter().map(|&v| (v, 0.0)).collect();
    fft(&mut data);

    let scale = 2.0 / n as f64;
    let dc = data[0].0 / n as f64;
    let mut harmonics = Vec::with_capacity(n_harmonics);
    for h in 1..=n_harmonics {
        // Bin of the h-th harmonic: h * cycles (window = `cycles` periods).
        let bin = h * cycles;
        let (re, im) = data[bin];
        harmonics.push(SpectralLine {
            frequency: h as f64 * fundamental,
            amplitude: scale * re.hypot(im),
            phase_deg: im.atan2(re).to_degrees(),
        });
    }
    let a1 = harmonics[0].amplitude;
    let distortion: f64 = harmonics[1..].iter().map(|l| l.amplitude * l.amplitude).sum();
    let thd = if a1 > 0.0 { distortion.sqrt() / a1 } else { 0.0 };
    FourierAnalysis { dc, harmonics, thd }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine_trace(freq: f64, amp: f64, offset: f64, tstop: f64, n: usize) -> Vec<(f64, f64)> {
        (0..=n)
            .map(|k| {
                let t = tstop * k as f64 / n as f64;
                (t, offset + amp * (std::f64::consts::TAU * freq * t).sin())
            })
            .collect()
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut d = vec![(0.0, 0.0); 8];
        d[0] = (1.0, 0.0);
        fft(&mut d);
        for &(re, im) in &d {
            assert!((re - 1.0).abs() < 1e-12 && im.abs() < 1e-12);
        }
    }

    #[test]
    fn fft_of_single_tone_peaks_at_its_bin() {
        let n = 64;
        let mut d: Vec<(f64, f64)> = (0..n)
            .map(|k| ((std::f64::consts::TAU * 5.0 * k as f64 / n as f64).cos(), 0.0))
            .collect();
        fft(&mut d);
        let mags: Vec<f64> = d.iter().map(|&(r, i)| r.hypot(i)).collect();
        let peak =
            mags.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).expect("finite")).unwrap().0;
        assert_eq!(peak.min(n - peak), 5, "peak at bin {peak}");
        assert!((mags[5] - n as f64 / 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn fft_rejects_non_power_of_two() {
        let mut d = vec![(0.0, 0.0); 6];
        fft(&mut d);
    }

    #[test]
    fn resample_reproduces_linear_ramps() {
        let tr = vec![(0.0, 0.0), (1.0, 2.0)];
        let s = resample(&tr, 0.0, 1.0, 4);
        assert_eq!(s, vec![0.0, 0.5, 1.0, 1.5]);
    }

    #[test]
    fn fourier_of_pure_sine() {
        let tr = sine_trace(1e6, 2.5, 0.3, 10e-6, 5000);
        let fa = fourier(&tr, 1e6, 4, 5);
        assert!((fa.dc - 0.3).abs() < 1e-3, "dc {}", fa.dc);
        assert!((fa.harmonics[0].amplitude - 2.5).abs() < 5e-3, "a1 {}", fa.harmonics[0].amplitude);
        assert!(fa.thd < 1e-3, "thd {}", fa.thd);
        assert_eq!(fa.harmonics[0].frequency, 1e6);
        assert_eq!(fa.harmonics[2].frequency, 3e6);
    }

    #[test]
    fn fourier_detects_harmonic_distortion() {
        // Fundamental + 10% third harmonic.
        let n = 8000;
        let tr: Vec<(f64, f64)> = (0..=n)
            .map(|k| {
                let t = 10e-6 * k as f64 / n as f64;
                let w = std::f64::consts::TAU * 1e6 * t;
                (t, w.sin() + 0.1 * (3.0 * w).sin())
            })
            .collect();
        let fa = fourier(&tr, 1e6, 4, 5);
        assert!((fa.thd - 0.1).abs() < 2e-3, "thd {}", fa.thd);
        assert!((fa.harmonics[2].amplitude - 0.1).abs() < 2e-3);
        assert!(fa.harmonics[1].amplitude < 1e-3, "no 2nd harmonic");
    }

    #[test]
    fn clipped_sine_has_high_thd() {
        let tr: Vec<(f64, f64)> = (0..=8000)
            .map(|k| {
                let t = 10e-6 * k as f64 / 8000.0;
                let v: f64 = 2.0 * (std::f64::consts::TAU * 1e6 * t).sin();
                (t, v.clamp(-1.0, 1.0))
            })
            .collect();
        let fa = fourier(&tr, 1e6, 4, 9);
        assert!(fa.thd > 0.05, "clipping must distort: thd {}", fa.thd);
    }
}
