//! Experiment harness for the WavePipe evaluation: one function per table
//! and figure (experiments E1–E8 of `DESIGN.md`), shared by the `tables` /
//! `figures` binaries and the Criterion benches.
//!
//! Every function returns both structured data and a formatted text block,
//! so the binaries print paper-style rows and the tests can assert on the
//! numbers.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod doctor;
pub mod perfgate;
pub mod sweep;

use std::fmt::Write as _;
use wavepipe_circuit::generators::{self, Benchmark};
use wavepipe_core::{run_wavepipe, verify, Scheme, WavePipeOptions, WavePipeReport};
use wavepipe_engine::{run_transient, Method, SimOptions, TransientResult};
use wavepipe_telemetry::{json, Event, ProbeHandle, RecordingProbe};

/// Experiment scale: the full paper-style suite or a reduced suite for CI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// Paper-scale circuits (Table 1 sizes).
    #[default]
    Full,
    /// Reduced sizes for fast runs and tests.
    Small,
}

/// The benchmark suite at the requested scale.
pub fn suite(scale: Scale) -> Vec<Benchmark> {
    match scale {
        Scale::Full => generators::table_suite(),
        Scale::Small => generators::small_suite(),
    }
}

/// Serial baseline run of a benchmark.
pub fn run_serial(b: &Benchmark) -> TransientResult {
    run_transient(&b.circuit, b.tstep, b.tstop, &SimOptions::default())
        .unwrap_or_else(|e| panic!("{}: serial run failed: {e}", b.name))
}

/// One WavePipe run of a benchmark.
pub fn run_scheme(b: &Benchmark, scheme: Scheme, threads: usize) -> WavePipeReport {
    let opts = WavePipeOptions::new(scheme, threads);
    run_wavepipe(&b.circuit, b.tstep, b.tstop, &opts)
        .unwrap_or_else(|e| panic!("{}: {scheme} x{threads} failed: {e}", b.name))
}

/// A measured (serial, wavepipe) pair with derived metrics.
#[derive(Debug, Clone)]
pub struct CaseOutcome {
    /// Benchmark name.
    pub name: String,
    /// Scheme measured.
    pub scheme: Scheme,
    /// Threads used.
    pub threads: usize,
    /// Serial accepted points.
    pub serial_points: usize,
    /// Serial Newton iterations.
    pub serial_iters: usize,
    /// WavePipe accepted points.
    pub wp_points: usize,
    /// Modelled (critical-path) speedup.
    pub speedup: f64,
    /// Wall-clock-based speedup (serial wall / critical-path wall; the
    /// per-task wall times are measured individually, so their round maxima
    /// approximate a parallel machine even on a single-core host).
    pub wall_speedup: f64,
    /// Lead / speculation accept rate.
    pub accept_rate: f64,
    /// Max waveform deviation relative to serial peak.
    pub max_rel_dev: f64,
    /// RMS waveform deviation relative to serial peak.
    pub rms_rel_dev: f64,
}

/// Runs a benchmark under one scheme and collects the outcome.
pub fn measure(b: &Benchmark, scheme: Scheme, threads: usize) -> CaseOutcome {
    let serial = run_serial(b);
    measure_against(b, &serial, scheme, threads)
}

/// Like [`measure`] but reuses an already-computed serial reference.
pub fn measure_against(
    b: &Benchmark,
    serial: &TransientResult,
    scheme: Scheme,
    threads: usize,
) -> CaseOutcome {
    let rep = run_scheme(b, scheme, threads);
    let eq = verify::compare(serial, &rep.result);
    CaseOutcome {
        name: b.name.clone(),
        scheme,
        threads,
        serial_points: serial.len(),
        serial_iters: serial.stats().newton_iterations,
        wp_points: rep.result.len(),
        speedup: rep.modeled_speedup(serial.stats()),
        wall_speedup: rep.wall_speedup(serial.stats()),
        accept_rate: rep.accept_rate(),
        max_rel_dev: eq.max_rel(),
        rms_rel_dev: eq.rms_rel(),
    }
}

/// **Table 1 (E1)** — benchmark circuit characteristics.
pub fn table1(scale: Scale) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 1: benchmark circuits");
    let _ = writeln!(
        out,
        "{:<22} {:>8} {:>7} {:>9} {:>10} {:>10} {:>10}",
        "circuit", "class", "nodes", "unknowns", "elements", "nonlinear", "tstop"
    );
    for b in suite(scale) {
        let _ = writeln!(
            out,
            "{:<22} {:>8} {:>7} {:>9} {:>10} {:>10} {:>9.1e}",
            b.name,
            b.class.to_string(),
            b.circuit.node_count(),
            b.circuit.unknown_count(),
            b.circuit.element_count(),
            b.circuit.nonlinear_count(),
            b.tstop
        );
    }
    out
}

fn scheme_table(title: &str, scale: Scale, runs: &[(Scheme, usize)]) -> (String, Vec<CaseOutcome>) {
    let mut out = String::new();
    let mut cases = Vec::new();
    let _ = writeln!(out, "{title}");
    let mut header = format!("{:<22} {:>8} {:>8}", "circuit", "ser.pts", "ser.itr");
    for (s, t) in runs {
        header.push_str(&format!(" {:>12}", format!("{s}x{t}")));
    }
    header.push_str(&format!(" {:>8} {:>8} {:>9}", "wall", "accept", "rms.dev"));
    let _ = writeln!(out, "{header}");
    for b in suite(scale) {
        let serial = run_serial(&b);
        let mut row =
            format!("{:<22} {:>8} {:>8}", b.name, serial.len(), serial.stats().newton_iterations);
        let mut last: Option<CaseOutcome> = None;
        for &(s, t) in runs {
            let c = measure_against(&b, &serial, s, t);
            row.push_str(&format!(" {:>11.2}x", c.speedup));
            last = Some(c.clone());
            cases.push(c);
        }
        if let Some(c) = last {
            row.push_str(&format!(
                " {:>7.2}x {:>7.0}% {:>9.1e}",
                c.wall_speedup,
                c.accept_rate * 100.0,
                c.rms_rel_dev
            ));
        }
        let _ = writeln!(out, "{row}");
    }
    (out, cases)
}

/// **Table 2 (E2)** — backward pipelining speedups at 2 and 3 threads.
pub fn table2(scale: Scale) -> (String, Vec<CaseOutcome>) {
    scheme_table(
        "Table 2: backward pipelining (modeled critical-path speedup over serial)",
        scale,
        &[(Scheme::Backward, 2), (Scheme::Backward, 3)],
    )
}

/// **Table 3 (E3)** — forward pipelining speedups at 2 and 3 threads.
pub fn table3(scale: Scale) -> (String, Vec<CaseOutcome>) {
    scheme_table(
        "Table 3: forward pipelining (modeled critical-path speedup over serial)",
        scale,
        &[(Scheme::Forward, 2), (Scheme::Forward, 3)],
    )
}

/// **Table 4 (E4)** — combined scheme at 4 threads.
pub fn table4(scale: Scale) -> (String, Vec<CaseOutcome>) {
    scheme_table("Table 4: combined backward+forward pipelining", scale, &[(Scheme::Combined, 4)])
}

/// **Table 5 (extension)** — the adaptive scheduler (not in the paper; its
/// conclusion's "new avenues"): per-round selection between backward and
/// forward pipelining by measured efficiency.
pub fn table5(scale: Scale) -> (String, Vec<CaseOutcome>) {
    scheme_table(
        "Table 5 (extension): adaptive per-round scheme selection",
        scale,
        &[(Scheme::Adaptive, 2), (Scheme::Adaptive, 4)],
    )
}

/// **Figure A (E5)** — waveform accuracy: deviation of every scheme from the
/// serial reference, alongside the serial trap-vs-gear2 "noise floor".
pub fn fig_accuracy(scale: Scale) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Figure A: waveform accuracy vs serial (rms, relative to signal peak)");
    let _ = writeln!(
        out,
        "{:<22} {:>13} {:>13} {:>13} {:>13}",
        "circuit", "noise-floor", "backward", "forward", "combined"
    );
    for b in suite(scale) {
        let serial = run_serial(&b);
        let gear = run_transient(
            &b.circuit,
            b.tstep,
            b.tstop,
            &SimOptions::default().with_method(Method::Gear2),
        )
        .unwrap_or_else(|e| panic!("{}: gear2 run failed: {e}", b.name));
        let floor = verify::compare(&serial, &gear).rms_rel();
        let devs: Vec<f64> = [(Scheme::Backward, 2), (Scheme::Forward, 2), (Scheme::Combined, 4)]
            .iter()
            .map(|&(s, t)| measure_against(&b, &serial, s, t).rms_rel_dev)
            .collect();
        let _ = writeln!(
            out,
            "{:<22} {:>13.2e} {:>13.2e} {:>13.2e} {:>13.2e}",
            b.name, floor, devs[0], devs[1], devs[2]
        );
    }
    out
}

/// **Figure B (E6)** — step-size profile over time, serial vs backward.
///
/// Returns CSV: `t,h_serial` rows then a blank line then `t,h_backward`.
pub fn fig_step_profile(b: &Benchmark) -> String {
    let serial = run_serial(b);
    let rep = run_scheme(b, Scheme::Backward, 2);
    let mut out = String::new();
    let _ = writeln!(out, "# Figure B: step size vs time — {}", b.name);
    let _ = writeln!(out, "t,h_serial");
    for w in serial.times().windows(2) {
        let _ = writeln!(out, "{:.6e},{:.6e}", w[1], w[1] - w[0]);
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "t,h_backward");
    for w in rep.result.times().windows(2) {
        let _ = writeln!(out, "{:.6e},{:.6e}", w[1], w[1] - w[0]);
    }
    out
}

/// One point of the thread-scaling figure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalingPoint {
    /// Thread count.
    pub threads: usize,
    /// Modelled speedup.
    pub speedup: f64,
}

/// Per-scheme scaling series, as produced by [`fig_scaling`].
pub type ScalingSeries = Vec<(Scheme, Vec<ScalingPoint>)>;

/// **Figure C (E7)** — speedup vs thread count (1–4) for each scheme.
pub fn fig_scaling(b: &Benchmark) -> (String, ScalingSeries) {
    let serial = run_serial(b);
    let mut out = String::new();
    let _ = writeln!(out, "Figure C: speedup vs threads — {}", b.name);
    let _ = writeln!(out, "{:<10} {:>8} {:>8} {:>8} {:>8}", "scheme", "x1", "x2", "x3", "x4");
    let mut series = Vec::new();
    for scheme in [Scheme::Backward, Scheme::Forward, Scheme::Combined, Scheme::Adaptive] {
        let mut pts = Vec::new();
        let mut row = format!("{:<10}", scheme.to_string());
        for threads in 1..=4 {
            let c = measure_against(b, &serial, scheme, threads);
            row.push_str(&format!(" {:>7.2}x", c.speedup));
            pts.push(ScalingPoint { threads, speedup: c.speedup });
        }
        let _ = writeln!(out, "{row}");
        series.push((scheme, pts));
    }
    (out, series)
}

/// **Figure D (E8)** — forward-pipelining ablation: speculation accept rate
/// and speedup vs the refinement iteration budget and stride factor.
pub fn fig_fp_ablation(b: &Benchmark) -> String {
    let serial = run_serial(b);
    let mut out = String::new();
    let _ = writeln!(out, "Figure D: forward-pipelining ablation — {}", b.name);
    let _ = writeln!(
        out,
        "{:<14} {:<14} {:>10} {:>10}",
        "refine-iters", "stride-factor", "accept", "speedup"
    );
    for refine in [2usize, 4, 8] {
        for stride in [0.5f64, 1.0, 2.0] {
            let opts = WavePipeOptions::new(Scheme::Forward, 2)
                .with_fp_refine_iters(refine)
                .with_fp_stride_factor(stride);
            let rep = run_wavepipe(&b.circuit, b.tstep, b.tstop, &opts)
                .unwrap_or_else(|e| panic!("{}: ablation failed: {e}", b.name));
            let _ = writeln!(
                out,
                "{:<14} {:<14} {:>9.0}% {:>9.2}x",
                refine,
                stride,
                rep.accept_rate() * 100.0,
                rep.modeled_speedup(serial.stats())
            );
        }
    }
    out
}

/// **Figure D2 (E8)** — backward-pipelining ablation: lead budget slack.
pub fn fig_bp_ablation(b: &Benchmark) -> String {
    let serial = run_serial(b);
    let mut out = String::new();
    let _ = writeln!(out, "Figure D2: backward-pipelining lead-budget ablation — {}", b.name);
    let _ = writeln!(out, "{:<14} {:>10} {:>10}", "budget-slack", "accept", "speedup");
    for slack in [1.0f64, 2.0, 4.0, f64::INFINITY] {
        let opts = WavePipeOptions::new(Scheme::Backward, 2).with_bp_budget_slack(slack);
        let rep = run_wavepipe(&b.circuit, b.tstep, b.tstop, &opts)
            .unwrap_or_else(|e| panic!("{}: ablation failed: {e}", b.name));
        let _ = writeln!(
            out,
            "{:<14} {:>9.0}% {:>9.2}x",
            if slack.is_finite() { format!("{slack}") } else { "unlimited".to_string() },
            rep.accept_rate() * 100.0,
            rep.modeled_speedup(serial.stats())
        );
    }
    out
}

/// One measured point of the intra-step stamp-parallelism figure.
#[derive(Debug, Clone)]
pub struct StampPoint {
    /// Stamp workers (`0` = serial stamping).
    pub workers: usize,
    /// Actual time spent stamping across the run, milliseconds.
    pub stamp_ms: f64,
    /// Critical-path-modeled stamp time (busiest worker + serial snapshot
    /// and accumulation), milliseconds. Equals `stamp_ms` when serial.
    pub modeled_stamp_ms: f64,
    /// Stamp-phase-only modeled speedup vs the serial stamp.
    pub stamp_speedup: f64,
    /// Modeled per-point Newton speedup: serial wall over serial wall with
    /// the stamp phase replaced by its parallel critical-path model. Valid
    /// because colored stamping is bit-identical, so both runs perform the
    /// same Newton trajectory point for point.
    pub newton_speedup: f64,
}

/// **Stamp figure (E9)** — serial vs graph-colored parallel stamping: stamp
/// time and modeled per-point Newton speedup at 1..=`max_workers` stamp
/// workers. Every configuration is the *same* Newton trajectory (parallel
/// stamping is bit-identical), so the comparison isolates device-evaluation
/// parallelism from step-control noise.
pub fn fig_stamp_scaling(b: &Benchmark, max_workers: usize) -> (String, Vec<StampPoint>) {
    // Calibration dispatch: time each chunk's evaluation uncontended, so the
    // critical-path model is not inflated by core oversubscription on the
    // bench host (results are bit-identical with or without it).
    std::env::set_var("WAVEPIPE_STAMP_SEQUENTIAL", "1");
    // Each configuration is measured `REPEATS` times and the fastest run is
    // kept — the minimum is the standard noise-floor estimator on a shared
    // host. Trajectory identity is asserted on every run regardless.
    const REPEATS: usize = 3;
    let serial = run_serial(b);
    let (mut wall0, mut stamp0) = (serial.stats().wall_ns as f64, serial.stats().stamp_ns as f64);
    for _ in 1..REPEATS {
        let again = run_serial(b);
        if (again.stats().wall_ns as f64) < wall0 {
            wall0 = again.stats().wall_ns as f64;
            stamp0 = again.stats().stamp_ns as f64;
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "Stamp scaling: colored parallel device evaluation — {}", b.name);
    let _ = writeln!(
        out,
        "{:<8} {:>12} {:>14} {:>12} {:>14}",
        "workers", "stamp (ms)", "modeled (ms)", "stamp spdup", "newton spdup"
    );
    let mut points = Vec::with_capacity(max_workers + 1);
    for workers in 0..=max_workers {
        let stats = if workers == 0 {
            let mut s = *serial.stats();
            s.wall_ns = wall0 as u128;
            s.stamp_ns = stamp0 as u128;
            s.stamp_modeled_ns = stamp0 as u128;
            s
        } else {
            let opts = SimOptions::default().with_stamp_workers(workers);
            let mut best: Option<wavepipe_engine::SimStats> = None;
            for _ in 0..REPEATS {
                let res = run_transient(&b.circuit, b.tstep, b.tstop, &opts)
                    .unwrap_or_else(|e| panic!("{}: stamp x{workers} failed: {e}", b.name));
                assert_eq!(
                    res.times(),
                    serial.times(),
                    "{}: parallel stamping altered the trajectory",
                    b.name
                );
                if best.is_none_or(|s| res.stats().stamp_modeled_ns < s.stamp_modeled_ns) {
                    best = Some(*res.stats());
                }
            }
            best.expect("at least one repeat")
        };
        let modeled = stats.stamp_modeled_ns as f64;
        let p = StampPoint {
            workers,
            stamp_ms: stats.stamp_ns as f64 / 1e6,
            modeled_stamp_ms: modeled / 1e6,
            stamp_speedup: if modeled > 0.0 { stamp0 / modeled } else { 1.0 },
            newton_speedup: if wall0 > 0.0 { wall0 / (wall0 - stamp0 + modeled) } else { 1.0 },
        };
        let _ = writeln!(
            out,
            "{:<8} {:>12.2} {:>14.2} {:>11.2}x {:>13.2}x",
            if p.workers == 0 { "serial".to_string() } else { format!("{}", p.workers) },
            p.stamp_ms,
            p.modeled_stamp_ms,
            p.stamp_speedup,
            p.newton_speedup,
        );
        points.push(p);
    }
    (out, points)
}

/// Machine-readable form of the stamp-scaling series — written by the
/// `stamp` binary as `BENCH_stamp.json`.
pub fn stamp_scaling_to_json(groups: &[(&str, &[StampPoint])]) -> String {
    let mut out = String::from("{");
    for (gi, (name, pts)) in groups.iter().enumerate() {
        if gi > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n  \"{}\": [", json::escape(name));
        for (pi, p) in pts.iter().enumerate() {
            if pi > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"workers\":{},\"stamp_ms\":{},\"modeled_stamp_ms\":{},\
                 \"stamp_speedup\":{},\"newton_speedup\":{}}}",
                p.workers,
                json::fmt_f64(p.stamp_ms),
                json::fmt_f64(p.modeled_stamp_ms),
                json::fmt_f64(p.stamp_speedup),
                json::fmt_f64(p.newton_speedup)
            );
        }
        out.push_str("\n  ]");
    }
    out.push_str("\n}\n");
    out
}

/// One caches-off / caches-on measurement pair — a row of the **Newton
/// hot-path figure (E11)**.
#[derive(Debug, Clone)]
pub struct NewtonPathRow {
    /// Benchmark name.
    pub name: String,
    /// Best-of-repeats wall time with bypass, chord, and companion caching
    /// all disabled, milliseconds.
    pub off_ms: f64,
    /// Best-of-repeats wall time with all three cache layers enabled,
    /// milliseconds.
    pub on_ms: f64,
    /// End-to-end single-thread speedup, `off_ms / on_ms`.
    pub speedup: f64,
    /// Mean Newton-iteration cost without caching, microseconds.
    pub us_per_iter_off: f64,
    /// Mean Newton-iteration cost with caching, microseconds.
    pub us_per_iter_on: f64,
    /// Full numeric factorization passes without caching.
    pub fact_off: usize,
    /// Full numeric factorization passes with caching.
    pub fact_on: usize,
    /// Device evaluations skipped by the bypass over the cached run.
    pub bypass_hits: usize,
    /// Newton iterations solved against a reused LU over the cached run.
    pub jacobian_reuses: usize,
    /// Stamps that replayed the cached companion linearization.
    pub companion_hits: usize,
}

/// **Newton hot-path figure (E11)** — end-to-end effect of the solver-cache
/// layers (device bypass, chord Newton, companion caching) on single-thread
/// transient runs: each benchmark is run with every cache disabled and with
/// all of them enabled, `REPEATS` times each keeping the fastest, and the
/// waveforms are cross-checked to stay within LTE-scale deviation.
pub fn fig_newton_path(subjects: &[Benchmark]) -> (String, Vec<NewtonPathRow>) {
    const REPEATS: usize = 3;
    let off_opts = SimOptions::default()
        .with_stamp_workers(0)
        .with_bypass(false)
        .with_chord_newton(false)
        .with_companion_cache(false);
    let on_opts = SimOptions::default()
        .with_stamp_workers(0)
        .with_bypass(true)
        .with_chord_newton(true)
        .with_companion_cache(true);
    let best = |b: &Benchmark, opts: &SimOptions, what: &str| -> TransientResult {
        let mut best: Option<TransientResult> = None;
        for _ in 0..REPEATS {
            let r = run_transient(&b.circuit, b.tstep, b.tstop, opts)
                .unwrap_or_else(|e| panic!("{} {what}: {e}", b.name));
            if best.as_ref().is_none_or(|p| r.stats().wall_ns < p.stats().wall_ns) {
                best = Some(r);
            }
        }
        best.expect("at least one repeat")
    };
    let mut out = String::new();
    let _ = writeln!(out, "Newton hot path: solver caches off vs on (single-thread)");
    let _ = writeln!(
        out,
        "{:<22} {:>9} {:>9} {:>8} {:>11} {:>11} {:>8} {:>8} {:>9}",
        "circuit",
        "off (ms)",
        "on (ms)",
        "speedup",
        "us/it off",
        "us/it on",
        "fact",
        "reuses",
        "bypassed"
    );
    let mut rows = Vec::with_capacity(subjects.len());
    for b in subjects {
        let off = best(b, &off_opts, "caches off");
        let on = best(b, &on_opts, "caches on");
        // Accuracy guard: a speedup that moved the waveform is not a result.
        // The rms-relative-to-peak metric of E5 tolerates the per-stage edge
        // jitter that accumulates down deep chains; 2% is the same bound the
        // fault-chaos tests accept.
        let rms = verify::compare(&off, &on).rms_rel();
        assert!(rms < 0.02, "{}: cached waveform rms deviation {rms:e} > 2%", b.name);
        let (so, sn) = (off.stats(), on.stats());
        let row = NewtonPathRow {
            name: b.name.clone(),
            off_ms: so.wall_ns as f64 / 1e6,
            on_ms: sn.wall_ns as f64 / 1e6,
            speedup: so.wall_ns as f64 / sn.wall_ns.max(1) as f64,
            us_per_iter_off: so.wall_ns as f64 / 1e3 / so.newton_iterations.max(1) as f64,
            us_per_iter_on: sn.wall_ns as f64 / 1e3 / sn.newton_iterations.max(1) as f64,
            fact_off: so.factorizations,
            fact_on: sn.factorizations,
            bypass_hits: sn.bypass_hits,
            jacobian_reuses: sn.jacobian_reuses,
            companion_hits: sn.companion_hits,
        };
        let _ = writeln!(
            out,
            "{:<22} {:>9.2} {:>9.2} {:>7.2}x {:>11.2} {:>11.2} {:>3}/{:<4} {:>8} {:>9}",
            row.name,
            row.off_ms,
            row.on_ms,
            row.speedup,
            row.us_per_iter_off,
            row.us_per_iter_on,
            row.fact_on,
            row.fact_off,
            row.jacobian_reuses,
            row.bypass_hits,
        );
        rows.push(row);
    }
    (out, rows)
}

/// Machine-readable form of the Newton hot-path rows — written by the
/// `newton_path` binary as `BENCH_newton.json`.
pub fn newton_path_to_json(rows: &[NewtonPathRow]) -> String {
    let mut out = String::from("[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n  {{\"name\":\"{}\",\"off_ms\":{},\"on_ms\":{},\"speedup\":{},\
             \"us_per_iter_off\":{},\"us_per_iter_on\":{},\"fact_off\":{},\"fact_on\":{},\
             \"bypass_hits\":{},\"jacobian_reuses\":{},\"companion_hits\":{}}}",
            json::escape(&r.name),
            json::fmt_f64(r.off_ms),
            json::fmt_f64(r.on_ms),
            json::fmt_f64(r.speedup),
            json::fmt_f64(r.us_per_iter_off),
            json::fmt_f64(r.us_per_iter_on),
            r.fact_off,
            r.fact_on,
            r.bypass_hits,
            r.jacobian_reuses,
            r.companion_hits,
        );
    }
    out.push_str("\n]\n");
    out
}

/// Like [`run_scheme`] but with a [`RecordingProbe`] attached: returns the
/// report plus the recorded telemetry event stream (for `--trace` in the
/// bench binaries).
pub fn run_traced(b: &Benchmark, scheme: Scheme, threads: usize) -> (WavePipeReport, Vec<Event>) {
    let probe = RecordingProbe::shared();
    let opts = WavePipeOptions::new(scheme, threads).with_probe(ProbeHandle::new(probe.clone()));
    let rep = run_wavepipe(&b.circuit, b.tstep, b.tstop, &opts)
        .unwrap_or_else(|e| panic!("{}: traced {scheme} x{threads} failed: {e}", b.name));
    let events = probe.events();
    (rep, events)
}

fn case_json(c: &CaseOutcome) -> String {
    format!(
        "{{\"name\":\"{}\",\"scheme\":\"{}\",\"threads\":{},\
         \"serial_points\":{},\"serial_iters\":{},\"wp_points\":{},\
         \"speedup\":{},\"wall_speedup\":{},\"accept_rate\":{},\
         \"max_rel_dev\":{},\"rms_rel_dev\":{}}}",
        json::escape(&c.name),
        c.scheme,
        c.threads,
        c.serial_points,
        c.serial_iters,
        c.wp_points,
        json::fmt_f64(c.speedup),
        json::fmt_f64(c.wall_speedup),
        json::fmt_f64(c.accept_rate),
        json::fmt_f64(c.max_rel_dev),
        json::fmt_f64(c.rms_rel_dev)
    )
}

/// Machine-readable form of named [`CaseOutcome`] groups, e.g.
/// `{"table2": [...], "table3": [...]}` — written by the `tables` binary as
/// `BENCH_tables.json` so the perf trajectory can be tracked across commits.
pub fn cases_to_json(groups: &[(&str, &[CaseOutcome])]) -> String {
    let mut out = String::from("{");
    for (gi, (name, cases)) in groups.iter().enumerate() {
        if gi > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n  \"{}\": [", json::escape(name));
        for (ci, c) in cases.iter().enumerate() {
            if ci > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    {}", case_json(c));
        }
        out.push_str("\n  ]");
    }
    out.push_str("\n}\n");
    out
}

/// Machine-readable form of named thread-scaling series, e.g.
/// `{"power_grid": {"backward": [{"threads":1,"speedup":1.0}, ...]}}` —
/// written by the `figures` binary as `BENCH_figures.json`.
pub fn scaling_to_json(figures: &[(&str, &ScalingSeries)]) -> String {
    let mut out = String::from("{");
    for (fi, (name, series)) in figures.iter().enumerate() {
        if fi > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n  \"{}\": {{", json::escape(name));
        for (si, (scheme, pts)) in series.iter().enumerate() {
            if si > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    \"{scheme}\": [");
            for (pi, p) in pts.iter().enumerate() {
                if pi > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"threads\":{},\"speedup\":{}}}",
                    p.threads,
                    json::fmt_f64(p.speedup)
                );
            }
            out.push(']');
        }
        out.push_str("\n  }");
    }
    out.push_str("\n}\n");
    out
}

/// `--trace` / `--trace-format` options shared by the bench binaries.
#[derive(Debug, Default)]
pub struct TraceArgs {
    /// Output path (`None` = tracing not requested).
    pub path: Option<std::path::PathBuf>,
    /// `true` = JSONL, `false` = Chrome trace-event JSON (the default).
    pub jsonl: bool,
}

impl TraceArgs {
    /// Extracts `--trace <path>` / `--trace-format jsonl|chrome` from an
    /// argument list, returning the remaining arguments untouched.
    ///
    /// # Errors
    ///
    /// Returns a message when a flag is missing its value or the format is
    /// unknown.
    pub fn parse(args: impl Iterator<Item = String>) -> Result<(Self, Vec<String>), String> {
        let mut ta = TraceArgs::default();
        let mut rest = Vec::new();
        let mut args = args;
        while let Some(a) = args.next() {
            match a.as_str() {
                "--trace" => {
                    let p = args.next().ok_or("--trace needs a file path")?;
                    ta.path = Some(std::path::PathBuf::from(p));
                }
                "--trace-format" => match args.next().as_deref() {
                    Some("jsonl") => ta.jsonl = true,
                    Some("chrome") => ta.jsonl = false,
                    other => {
                        return Err(format!(
                            "--trace-format must be `jsonl` or `chrome`, got {other:?}"
                        ))
                    }
                },
                _ => rest.push(a),
            }
        }
        Ok((ta, rest))
    }

    /// Writes `events` to the requested path in the requested format.
    /// No-op when tracing was not requested.
    ///
    /// # Errors
    ///
    /// Propagates file-creation and write failures.
    pub fn write(&self, events: &[Event]) -> std::io::Result<()> {
        use std::io::Write as _;
        let Some(path) = &self.path else { return Ok(()) };
        let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
        if self.jsonl {
            wavepipe_telemetry::jsonl::write_jsonl(events, &mut file)?;
        } else {
            wavepipe_telemetry::chrome::write_chrome_trace(events, &mut file)?;
        }
        file.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_lists_all_benchmarks() {
        let t = table1(Scale::Small);
        for b in suite(Scale::Small) {
            assert!(t.contains(&b.name), "missing {}", b.name);
        }
    }

    #[test]
    fn measure_produces_finite_metrics() {
        let b = generators::rc_ladder(6);
        let c = measure(&b, Scheme::Backward, 2);
        assert!(c.speedup.is_finite() && c.speedup > 0.0);
        assert!(c.max_rel_dev.is_finite());
        assert!(c.wp_points > 5);
    }

    #[test]
    fn step_profile_has_both_series() {
        let b = generators::rc_ladder(5);
        let csv = fig_step_profile(&b);
        assert!(csv.contains("h_serial"));
        assert!(csv.contains("h_backward"));
    }

    #[test]
    fn scaling_covers_thread_range() {
        let b = generators::rc_ladder(5);
        let (_, series) = fig_scaling(&b);
        assert_eq!(series.len(), 4); // backward, forward, combined, adaptive
        for (_, pts) in &series {
            assert_eq!(pts.len(), 4);
            assert_eq!(pts[0].threads, 1);
        }
    }
}
