//! Fault-tolerance overhead probe: times the serial engine and the backward
//! scheme on the largest Table-1 circuit (`power_grid(12,12)`), fault-free,
//! printing best-of-N wall times in microseconds. Build this binary from two
//! checkouts to bound the overhead a runtime change puts on the hot path.

use std::hint::black_box;
use std::time::Instant;
use wavepipe_circuit::generators;
use wavepipe_core::{run_wavepipe, Scheme, WavePipeOptions};
use wavepipe_engine::{run_transient, SimOptions};

const REPS: usize = 7;

fn main() {
    let b = generators::power_grid(12, 12);
    let sim = SimOptions::default().with_stamp_workers(0);
    let wp = WavePipeOptions::new(Scheme::Backward, 2).with_stamp_workers(0);

    // Warm-up: fault the allocator and branch predictors equally.
    black_box(run_transient(&b.circuit, b.tstep, b.tstop, &sim).unwrap());
    black_box(run_wavepipe(&b.circuit, b.tstep, b.tstop, &wp).unwrap());

    let mut serial_best = u128::MAX;
    let mut backward_best = u128::MAX;
    for _ in 0..REPS {
        let t0 = Instant::now();
        black_box(run_transient(&b.circuit, b.tstep, b.tstop, &sim).unwrap());
        serial_best = serial_best.min(t0.elapsed().as_micros());

        let t0 = Instant::now();
        black_box(run_wavepipe(&b.circuit, b.tstep, b.tstop, &wp).unwrap());
        backward_best = backward_best.min(t0.elapsed().as_micros());
    }
    println!("circuit {} serial_us {serial_best} backward2_us {backward_best}", b.name);
}
