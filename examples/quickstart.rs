//! Quickstart: build an RC low-pass filter, simulate it serially and with
//! every WavePipe scheme, and compare accuracy and modelled speedup.
//!
//! Run with: `cargo run --release --example quickstart`

use wavepipe::core::verify;
use wavepipe::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Build the circuit: a pulse source driving an RC low-pass. ---
    let mut ckt = Circuit::new("rc lowpass quickstart");
    let inp = ckt.node("in");
    let out = ckt.node("out");
    ckt.add_vsource(
        "V1",
        inp,
        Circuit::GROUND,
        Waveform::pulse(0.0, 1.0, 5e-9, 1e-9, 1e-9, 40e-9, 100e-9),
    )?;
    ckt.add_resistor("R1", inp, out, 1e3)?;
    ckt.add_capacitor("C1", out, Circuit::GROUND, 2e-12)?;
    ckt.validate()?;
    println!("circuit: {}", ckt.summary());

    let (tstep, tstop) = (0.1e-9, 300e-9);

    // --- Serial reference. ---
    let serial = run_transient(&ckt, tstep, tstop, &SimOptions::default())?;
    println!(
        "\nserial   : {} points, {} newton iterations, {} rejected steps",
        serial.len(),
        serial.stats().newton_iterations,
        serial.stats().steps_rejected(),
    );
    let out_idx = serial.unknown_of("out").expect("out node exists");
    println!(
        "           v(out) at 20ns = {:.4} V, at 60ns = {:.4} V",
        serial.sample(out_idx, 20e-9),
        serial.sample(out_idx, 60e-9)
    );

    // --- WavePipe schemes. ---
    for (scheme, threads) in [(Scheme::Backward, 2), (Scheme::Forward, 2), (Scheme::Combined, 4)] {
        let opts = WavePipeOptions::new(scheme, threads);
        let report = run_wavepipe(&ckt, tstep, tstop, &opts)?;
        let eq = verify::compare(&serial, &report.result);
        println!(
            "{:<9}: {} points, modeled speedup {:.2}x, max deviation {:.2e} V (rms {:.2e})",
            scheme.to_string(),
            report.result.len(),
            report.modeled_speedup(serial.stats()),
            eq.max_abs,
            eq.rms
        );
    }

    println!("\nEvery scheme passes the same Newton and LTE tests as the serial engine,");
    println!("so the deviations above sit inside the integration tolerance band.");
    Ok(())
}
