//! **Batched corner-sweep figure** — throughput of [`BatchSim`] against the
//! classic one-run-at-a-time loop on a many-instance parameter sweep.
//!
//! Two quantities are reported, and they answer different questions:
//!
//! * `work_ratio` — real, single-core CPU-work saving: total wall of the
//!   independent loop (recompile + re-order + solve per instance) divided
//!   by the total wall of the batched engine (compile + order **once**,
//!   value-patch + solve per instance). Both totals are measured on this
//!   host, sequentially.
//! * `modeled_speedup` — the throughput a `workers`-wide machine gets from
//!   the batch: per-instance walls are measured individually (sequential
//!   dispatch, so each measurement is contention-free), then striped
//!   round-robin over the workers exactly as [`BatchSim::run`] stripes
//!   instances; the modeled makespan is the shared prep plus the heaviest
//!   worker's total. This is the same modeled-parallel-machine convention
//!   used by the stamp-scaling figure and `CaseOutcome::wall_speedup`: on a
//!   single-core CI host the round maxima approximate a real multi-core
//!   box without timing noise from oversubscription.
//!
//! The figure also cross-checks correctness in passing: every batched
//! instance must land on **exactly** the same time grid as its independent
//! twin (the bit-identity property pinned ulp-level by
//! `wavepipe-batch/tests/bit_identity.rs`).

use std::fmt::Write as _;
use std::time::Instant;
use wavepipe_batch::{BatchSim, ParamKind};
use wavepipe_circuit::generators::Benchmark;
use wavepipe_circuit::{Circuit, Element};
use wavepipe_engine::{run_transient, SimOptions, SolverHandle};
use wavepipe_telemetry::json;

/// One measured sweep configuration — a row of `BENCH_sweep.json`.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Benchmark name.
    pub circuit: String,
    /// Instances in the sweep.
    pub instances: usize,
    /// Modeled batch workers (round-robin striping).
    pub workers: usize,
    /// Total wall of the independent loop, milliseconds.
    pub independent_ms: f64,
    /// Total sequential wall of the batched engine, milliseconds.
    pub batched_cpu_ms: f64,
    /// Modeled makespan of the batch on `workers` workers, milliseconds.
    pub batched_makespan_ms: f64,
    /// Real single-core work saving, `independent_ms / batched_cpu_ms`.
    pub work_ratio: f64,
    /// Modeled throughput gain, `independent_ms / batched_makespan_ms`.
    pub modeled_speedup: f64,
    /// **Measured** (not modeled) per-instance throughput gain of the
    /// lane-packed SIMD tier over the classic batched path at the *same*
    /// thread count: wall of the scalar `run()` divided by wall of the SIMD
    /// `run()`, both dispatched sequentially on this host.
    pub simd_speedup: f64,
}

/// Deterministic corner multiplier stream: a tiny LCG (no external RNG in
/// the bench path) yielding multipliers in `[0.9, 1.1)`.
struct Corners {
    state: u64,
}

impl Corners {
    fn new(seed: u64) -> Self {
        Corners { state: seed.max(1) }
    }

    fn next_mult(&mut self) -> f64 {
        // Numerical Recipes LCG constants; top 32 bits for the mantissa.
        self.state = self.state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let u = (self.state >> 32) as f64 / 4294967296.0;
        0.9 + 0.2 * u
    }
}

/// The sweep parameter set for an inverter-chain-style benchmark: per stage
/// `i`, the NMOS/PMOS transconductance of `Mn{i}`/`Mp{i}` and the load
/// capacitance of `Cl{i}`. Stages are discovered by name probing so the
/// figure works at any chain length.
fn stage_count(ckt: &Circuit) -> usize {
    let mut n = 0;
    while ckt.element(&format!("Mn{n}")).is_some() {
        n += 1;
    }
    assert!(n > 0, "sweep subject must be an inverter-chain-style circuit");
    n
}

/// Nominal values for the swept parameters, read from the base circuit so
/// corners perturb whatever the generator chose.
fn nominals(ckt: &Circuit, stages: usize) -> Vec<f64> {
    let mut out = Vec::with_capacity(stages * 3);
    for i in 0..stages {
        let Some(Element::Mosfet { model, .. }) = ckt.element(&format!("Mn{i}")) else {
            unreachable!("stage {i} probed above");
        };
        out.push(model.kp);
        let Some(Element::Mosfet { model, .. }) = ckt.element(&format!("Mp{i}")) else {
            panic!("stage {i} lacks Mp{i}");
        };
        out.push(model.kp);
        let Some(Element::Capacitor { capacitance, .. }) = ckt.element(&format!("Cl{i}")) else {
            panic!("stage {i} lacks Cl{i}");
        };
        out.push(*capacitance);
    }
    out
}

/// Patch one instance's values into a fresh copy of the base circuit (the
/// independent loop's equivalent of a batch instance).
fn patched(base: &Circuit, stages: usize, row: &[f64]) -> Circuit {
    let mut ckt = base.clone();
    for i in 0..stages {
        if let Some(Element::Mosfet { model, .. }) = ckt.element_mut(&format!("Mn{i}")) {
            model.kp = row[i * 3];
        }
        if let Some(Element::Mosfet { model, .. }) = ckt.element_mut(&format!("Mp{i}")) {
            model.kp = row[i * 3 + 1];
        }
        if let Some(Element::Capacitor { capacitance, .. }) = ckt.element_mut(&format!("Cl{i}")) {
            *capacitance = row[i * 3 + 2];
        }
    }
    ckt
}

/// **Batched corner-sweep figure** — runs `instances` corners of the
/// benchmark through the independent loop and through [`BatchSim`]
/// (sequentially, for contention-free per-instance walls), cross-checks the
/// time grids, and models the makespan on `workers` workers. See the
/// module docs for what each reported number means.
pub fn fig_sweep(b: &Benchmark, instances: usize, workers: usize) -> (String, SweepRow) {
    assert!(instances >= 1 && workers >= 1);
    let stages = stage_count(&b.circuit);
    let noms = nominals(&b.circuit, stages);
    let mut corners = Corners::new(0x5eed_cafe);
    let rows: Vec<Vec<f64>> =
        (0..instances).map(|_| noms.iter().map(|&v| v * corners.next_mult()).collect()).collect();
    // Direct LU pinned on both sides: the batch engine always solves
    // through its shared batched direct backend, so the independent loop
    // must match it for the time-grid cross-check (and for the work-ratio
    // comparison to be solver-for-solver) even under `WAVEPIPE_SOLVER`.
    let opts = SimOptions::default().with_stamp_workers(0).with_solver(SolverHandle::direct());

    // Independent loop: rebuild + recompile + solve per instance, each
    // timed individually.
    let mut independent = Vec::with_capacity(instances);
    let mut independent_ns = 0u128;
    for row in &rows {
        let ckt = patched(&b.circuit, stages, row);
        let t0 = Instant::now();
        let res = run_transient(&ckt, b.tstep, b.tstop, &opts)
            .unwrap_or_else(|e| panic!("{}: independent run failed: {e}", b.name));
        independent_ns += t0.elapsed().as_nanos();
        independent.push(res);
    }

    // Batched engine, dispatched sequentially (one worker) so that each
    // instance's wall is measured contention-free; the striping below
    // models the parallel machine. The SIMD tier is pinned OFF here: the
    // makespan model stripes *per-instance* walls, and lane-tier instances
    // only have a shared group wall.
    let t0 = Instant::now();
    let mut batch = BatchSim::compile(&b.circuit, b.tstep, b.tstop)
        .unwrap_or_else(|e| panic!("{}: batch compile failed: {e}", b.name))
        .with_sim(opts.clone())
        .with_simd(false);
    for i in 0..stages {
        batch.param(&format!("Mn{i}"), ParamKind::MosKp).expect("Mn kp column");
        batch.param(&format!("Mp{i}"), ParamKind::MosKp).expect("Mp kp column");
        batch.param(&format!("Cl{i}"), ParamKind::Capacitance).expect("Cl column");
    }
    for row in &rows {
        batch.add_instance(row).expect("instance row");
    }
    let t_run = Instant::now();
    let run = batch.run().unwrap_or_else(|e| panic!("{}: batch run failed: {e}", b.name));
    let scalar_leg_ns = t_run.elapsed().as_nanos();
    let batched_ns = t0.elapsed().as_nanos();
    // Each timed leg of the scalar-vs-SIMD comparison runs twice and keeps
    // the *minimum* wall: on a shared single-core host one-shot walls carry
    // scheduler noise that would swamp the ~1.5x ratio under test, and the
    // minimum is the classic noise-robust estimator of the true cost. Both
    // legs are timed the same way — wall of the whole `run()` call over the
    // identical instance set — so dispatch overhead is charged to both.
    let scalar_run_ns = {
        let b2 = batch.clone();
        let t = Instant::now();
        b2.run().unwrap_or_else(|e| panic!("{}: batch rerun failed: {e}", b.name));
        scalar_leg_ns.min(t.elapsed().as_nanos())
    };

    // Correctness cross-check: identical time grids instance by instance.
    for (i, (got, want)) in run.results().iter().zip(&independent).enumerate() {
        assert_eq!(
            got.times(),
            want.times(),
            "{}: batched instance {i} diverged from its independent twin",
            b.name
        );
    }

    // SIMD tier, same thread count (sequential dispatch), measured for
    // real: same batch definition with the lane tier forced on. The wall
    // ratio of the two `run()` calls IS the per-instance throughput ratio —
    // both runs execute the identical instance set. Correctness rides along
    // via the same time-grid cross-check (ulp-level identity is pinned in
    // `wavepipe-batch/tests/bit_identity.rs`).
    let simd_batch = batch.clone().with_simd(true);
    let simd_speedup = if simd_batch.lane_width_in_use() > 0 {
        let t = Instant::now();
        let sr =
            simd_batch.run().unwrap_or_else(|e| panic!("{}: SIMD batch run failed: {e}", b.name));
        let mut simd_ns = t.elapsed().as_nanos();
        for (i, (got, want)) in sr.results().iter().zip(&independent).enumerate() {
            assert_eq!(
                got.times(),
                want.times(),
                "{}: SIMD instance {i} diverged from its independent twin",
                b.name
            );
        }
        let b2 = batch.clone().with_simd(true);
        let t = Instant::now();
        b2.run().unwrap_or_else(|e| panic!("{}: SIMD batch rerun failed: {e}", b.name));
        simd_ns = simd_ns.min(t.elapsed().as_nanos());
        scalar_run_ns as f64 / simd_ns.max(1) as f64
    } else {
        1.0 // forced-scalar leg (`WAVEPIPE_SIMD=0`): nothing to measure
    };

    // Modeled makespan: stripe the measured per-instance walls round-robin
    // over the workers (exactly BatchSim's assignment) and take the
    // heaviest worker. Per-instance overhead not captured inside the
    // solver wall (circuit patch, value re-lowering) is charged evenly.
    let solve_ns: Vec<u128> = run.results().iter().map(|r| r.stats().wall_ns).collect();
    let solve_total: u128 = solve_ns.iter().sum();
    let prep_ns = run.prep_ns();
    let patch_each =
        (batched_ns.saturating_sub(prep_ns).saturating_sub(solve_total)) / instances as u128;
    let stripe = workers.min(instances);
    let mut per_worker = vec![0u128; stripe];
    for (i, &ns) in solve_ns.iter().enumerate() {
        per_worker[i % stripe] += ns + patch_each;
    }
    let makespan_ns = prep_ns + per_worker.iter().copied().max().unwrap_or(0);

    let row = SweepRow {
        circuit: b.name.clone(),
        instances,
        workers,
        independent_ms: independent_ns as f64 / 1e6,
        batched_cpu_ms: batched_ns as f64 / 1e6,
        batched_makespan_ms: makespan_ns as f64 / 1e6,
        work_ratio: independent_ns as f64 / batched_ns.max(1) as f64,
        modeled_speedup: independent_ns as f64 / makespan_ns.max(1) as f64,
        simd_speedup,
    };

    let mut out = String::new();
    let _ = writeln!(out, "Batched corner sweep: BatchSim vs independent runs");
    let _ = writeln!(
        out,
        "{:<22} {:>5} {:>4} {:>12} {:>12} {:>13} {:>6} {:>8} {:>6}",
        "circuit",
        "inst",
        "wrk",
        "indep (ms)",
        "batch (ms)",
        "makespan (ms)",
        "work",
        "modeled",
        "simd"
    );
    let _ = writeln!(
        out,
        "{:<22} {:>5} {:>4} {:>12.1} {:>12.1} {:>13.1} {:>5.2}x {:>7.2}x {:>5.2}x",
        row.circuit,
        row.instances,
        row.workers,
        row.independent_ms,
        row.batched_cpu_ms,
        row.batched_makespan_ms,
        row.work_ratio,
        row.modeled_speedup,
        row.simd_speedup,
    );
    (out, row)
}

/// Machine-readable form of the sweep rows — written by the `sweep` binary
/// as `BENCH_sweep.json`.
pub fn sweep_to_json(rows: &[SweepRow]) -> String {
    let mut out = String::from("[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n  {{\"circuit\":\"{}\",\"instances\":{},\"workers\":{},\
             \"independent_ms\":{},\"batched_cpu_ms\":{},\"batched_makespan_ms\":{},\
             \"work_ratio\":{},\"modeled_speedup\":{},\"simd_speedup\":{}}}",
            json::escape(&r.circuit),
            r.instances,
            r.workers,
            json::fmt_f64(r.independent_ms),
            json::fmt_f64(r.batched_cpu_ms),
            json::fmt_f64(r.batched_makespan_ms),
            json::fmt_f64(r.work_ratio),
            json::fmt_f64(r.modeled_speedup),
            json::fmt_f64(r.simd_speedup),
        );
    }
    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wavepipe_circuit::generators;

    #[test]
    fn corners_are_deterministic_and_bounded() {
        let mut a = Corners::new(7);
        let mut b = Corners::new(7);
        for _ in 0..100 {
            let m = a.next_mult();
            assert_eq!(m, b.next_mult());
            assert!((0.9..1.1).contains(&m), "multiplier {m} out of band");
        }
    }

    #[test]
    fn small_sweep_produces_consistent_row() {
        let b = generators::inverter_chain(2);
        let (txt, row) = fig_sweep(&b, 3, 2);
        assert!(txt.contains("inverter_chain(2)"));
        assert_eq!(row.instances, 3);
        assert_eq!(row.workers, 2);
        assert!(row.independent_ms > 0.0);
        assert!(row.batched_makespan_ms <= row.batched_cpu_ms * 1.01);
        // The modeled speedup can never exceed work_ratio * workers.
        assert!(row.modeled_speedup <= row.work_ratio * row.workers as f64 * 1.01);
    }

    #[test]
    fn json_round_trips_through_the_shared_parser() {
        let rows = vec![SweepRow {
            circuit: "inverter_chain(8)".into(),
            instances: 100,
            workers: 8,
            independent_ms: 1000.0,
            batched_cpu_ms: 900.0,
            batched_makespan_ms: 130.0,
            work_ratio: 1.11,
            modeled_speedup: 7.69,
            simd_speedup: 1.8,
        }];
        let doc = sweep_to_json(&rows);
        let v = json::parse(&doc).expect("valid json");
        let arr = v.as_array().expect("array");
        assert_eq!(arr.len(), 1);
        assert_eq!(arr[0].get("workers").and_then(json::JsonValue::as_f64), Some(8.0));
        assert_eq!(arr[0].get("modeled_speedup").and_then(json::JsonValue::as_f64), Some(7.69));
    }
}
