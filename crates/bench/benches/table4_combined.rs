//! Criterion bench regenerating Table 4 (combined scheme): wall-clock cost
//! of serial vs the combined backward+forward scheme at 4 threads.

use criterion::{criterion_group, criterion_main, Criterion};
use wavepipe_circuit::generators;
use wavepipe_core::{run_wavepipe, Scheme, WavePipeOptions};
use wavepipe_engine::{run_transient, SimOptions};

fn bench_table4(c: &mut Criterion) {
    let mut group = c.benchmark_group("table4_combined");
    group.sample_size(10);
    for b in [generators::power_grid(6, 6), generators::inverter_chain(8)] {
        group.bench_function(format!("{}/serial", b.name), |bch| {
            bch.iter(|| {
                run_transient(&b.circuit, b.tstep, b.tstop, &SimOptions::default()).unwrap()
            })
        });
        group.bench_function(format!("{}/combined_x4", b.name), |bch| {
            let opts = WavePipeOptions::new(Scheme::Combined, 4);
            bch.iter(|| run_wavepipe(&b.circuit, b.tstep, b.tstop, &opts).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table4);
criterion_main!(benches);
