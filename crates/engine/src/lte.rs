//! Local-truncation-error estimation and step-size proposal.
//!
//! The LTE of a `p`-th order method is `C * h^(p+1) * x^(p+1)(xi)`. The
//! `(p+1)`-th derivative is estimated from Newton divided differences over
//! the most recent `p+2` accepted points (`x^(m) ~= m! * DD_m`). The step
//! controller converts the weighted-RMS error ratio into an accept/reject
//! decision and a next-step proposal — and because WavePipe runs this *same*
//! code on every point it accepts, its accuracy contract is identical to the
//! serial engine's.

use crate::integrate::Method;
use crate::options::SimOptions;
use wavepipe_sparse::vector::wrms_norm;
use wavepipe_telemetry::EventKind;

/// Computes the order-`(len-1)` divided difference of a vector-valued sample
/// set. `times[0]`/`xs[0]` is the newest point.
///
/// # Panics
///
/// Panics if fewer than 2 points are given, lengths mismatch, or two sample
/// times coincide.
pub fn divided_difference(times: &[f64], xs: &[&[f64]]) -> Vec<f64> {
    assert!(times.len() >= 2, "need at least two points");
    assert_eq!(times.len(), xs.len());
    let n = xs[0].len();
    let m = times.len();
    // Work columns: start with the raw samples, contract m-1 times.
    let mut cols: Vec<Vec<f64>> = xs.iter().map(|x| x.to_vec()).collect();
    for level in 1..m {
        for j in 0..(m - level) {
            let dt = times[j] - times[j + level];
            assert!(dt != 0.0, "coincident time points in divided difference");
            #[allow(clippy::needless_range_loop)] // two columns indexed in lockstep
            for k in 0..n {
                cols[j][k] = (cols[j][k] - cols[j + 1][k]) / dt;
            }
        }
    }
    cols.swap_remove(0)
}

/// Result of the LTE test for a candidate point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LteDecision {
    /// Weighted error ratio: `<= 1` means the point passes.
    pub ratio: f64,
    /// Suggested next step (if accepted) or retry step (if rejected).
    pub h_new: f64,
    /// Whether the candidate point should be accepted.
    pub accept: bool,
}

/// Evaluates the LTE of the candidate point `x_new` at `t_new` against the
/// recent history and proposes the next step.
///
/// `times`/`xs` are the previously accepted points, newest first; at least
/// `method.order() + 1` of them must be supplied (so the divided difference
/// has `order + 2` points including the candidate). `h` is the integration
/// stride the candidate was actually computed with — for the serial engine
/// this is `t_new - times[0]`, but WavePipe's backward-pipelined lead points
/// integrate across several committed points, so it is passed explicitly.
///
/// The returned `h_new` is already clamped to the growth limit `opts.rmax`
/// on accept, and to `[0.1, 0.9] * h` on reject.
pub fn lte_step_control(
    method: Method,
    t_new: f64,
    x_new: &[f64],
    h: f64,
    times: &[f64],
    xs: &[&[f64]],
    opts: &SimOptions,
) -> LteDecision {
    let p = method.order();
    let needed = p + 1;
    assert!(times.len() >= needed, "lte needs {needed} history points, got {}", times.len());
    assert!(h > 0.0, "integration stride must be positive");

    // Assemble candidate + history windows for the divided difference.
    let mut dd_times = Vec::with_capacity(p + 2);
    let mut dd_xs: Vec<&[f64]> = Vec::with_capacity(p + 2);
    dd_times.push(t_new);
    dd_xs.push(x_new);
    for i in 0..needed {
        dd_times.push(times[i]);
        dd_xs.push(xs[i]);
    }
    let dd = divided_difference(&dd_times, &dd_xs);

    // x^(p+1) ~= (p+1)! * DD_{p+1};  LTE = C * h^(p+1) * x^(p+1).
    let factorial = (1..=(p + 1)).product::<usize>() as f64;
    let scale = method.error_constant() * factorial * h.powi(p as i32 + 1);
    let lte: Vec<f64> = dd.iter().map(|&d| d * scale).collect();

    // Weighted norm relative to the solution magnitude; TRTOL absorbs the
    // deliberate overestimation of the bound.
    let ratio = wrms_norm(&lte, x_new, opts.reltol, opts.lte_abstol) / opts.trtol;
    if !ratio.is_finite() {
        // Degenerate divided differences (e.g. near-coincident history
        // times): treat as a hard rejection with a conservative retry.
        let h_retry = h * 0.3;
        opts.probe.emit(t_new, EventKind::LteReject { ratio: f64::INFINITY, h_retry });
        return LteDecision { ratio: f64::INFINITY, h_new: h_retry, accept: false };
    }

    // Step proposal targets an error ratio of 0.5 at the next step
    // (expected ratio scales like f^(p+1)): deliberately conservative so
    // accepted growth does not immediately bounce off a rejection.
    let exponent = 1.0 / (p as f64 + 1.0);
    if ratio <= 1.0 {
        let factor = if ratio < 1e-12 {
            opts.rmax
        } else {
            (0.5 / ratio).powf(exponent).clamp(0.3, opts.rmax)
        };
        let h_new = h * factor;
        opts.probe.emit(t_new, EventKind::StepSizeChosen { h: h_new, ratio });
        LteDecision { ratio, h_new, accept: true }
    } else {
        let factor = (0.5 / ratio).powf(exponent).clamp(0.1, 0.9);
        let h_retry = h * factor;
        opts.probe.emit(t_new, EventKind::LteReject { ratio, h_retry });
        LteDecision { ratio, h_new: h_retry, accept: false }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dd_first_order_is_slope() {
        let xs0 = [4.0];
        let xs1 = [2.0];
        let dd = divided_difference(&[2.0, 1.0], &[&xs0, &xs1]);
        assert_eq!(dd, vec![2.0]);
    }

    #[test]
    fn dd_annihilates_polynomials_below_order() {
        // Third divided difference of a quadratic is 0.
        let t = [3.0, 2.5, 1.5, 1.0];
        let f = |x: f64| 2.0 * x * x - x + 1.0;
        let xs: Vec<[f64; 1]> = t.iter().map(|&tt| [f(tt)]).collect();
        let refs: Vec<&[f64]> = xs.iter().map(|a| a.as_slice()).collect();
        let dd = divided_difference(&t, &refs);
        assert!(dd[0].abs() < 1e-10, "dd = {}", dd[0]);
    }

    #[test]
    fn dd_of_cubic_is_leading_coefficient() {
        // DD_3 of x^3 = 1 (leading coefficient), any spacing.
        let t = [2.0, 1.2, 0.7, 0.1];
        let xs: Vec<[f64; 1]> = t.iter().map(|&tt| [tt * tt * tt]).collect();
        let refs: Vec<&[f64]> = xs.iter().map(|a| a.as_slice()).collect();
        let dd = divided_difference(&t, &refs);
        assert!((dd[0] - 1.0).abs() < 1e-9, "dd = {}", dd[0]);
    }

    fn history_of(f: impl Fn(f64) -> f64, ts: &[f64]) -> Vec<Vec<f64>> {
        ts.iter().map(|&t| vec![f(t)]).collect()
    }

    #[test]
    fn smooth_solution_accepted_with_growth() {
        // A slowly varying (linear) waveform: trap LTE ~ 0 -> accept, grow.
        let opts = SimOptions::default();
        let f = |t: f64| 0.5 * t + 1.0;
        let times = [3.0, 2.0, 1.0];
        let hist = history_of(f, &times);
        let refs: Vec<&[f64]> = hist.iter().map(|v| v.as_slice()).collect();
        let xn = [f(4.0)];
        let d = lte_step_control(Method::Trapezoidal, 4.0, &xn, 1.0, &times, &refs, &opts);
        assert!(d.accept);
        assert!(d.h_new >= 1.0 * opts.rmax * 0.99, "h_new = {}", d.h_new);
    }

    #[test]
    fn wild_solution_rejected_with_shrink() {
        // A waveform with enormous third derivative at unit steps.
        let opts = SimOptions::default();
        let f = |t: f64| (10.0 * t).powi(3) * 1e3;
        let times = [3.0, 2.0, 1.0];
        let hist = history_of(f, &times);
        let refs: Vec<&[f64]> = hist.iter().map(|v| v.as_slice()).collect();
        let xn = [f(4.0)];
        let d = lte_step_control(Method::Trapezoidal, 4.0, &xn, 1.0, &times, &refs, &opts);
        assert!(!d.accept, "ratio = {}", d.ratio);
        assert!(d.h_new < 1.0);
        assert!(d.h_new >= 0.1 * 0.99);
    }

    #[test]
    fn be_needs_only_two_history_points() {
        let opts = SimOptions::default();
        let f = |t: f64| t;
        let times = [2.0, 1.0];
        let hist = history_of(f, &times);
        let refs: Vec<&[f64]> = hist.iter().map(|v| v.as_slice()).collect();
        let xn = [3.0];
        let d = lte_step_control(Method::BackwardEuler, 3.0, &xn, 1.0, &times, &refs, &opts);
        assert!(d.accept);
    }

    #[test]
    fn tighter_reltol_rejects_sooner() {
        let f = |t: f64| (t).sin() * 5.0;
        let times = [0.9, 0.6, 0.3];
        let hist = history_of(f, &times);
        let refs: Vec<&[f64]> = hist.iter().map(|v| v.as_slice()).collect();
        let xn = [f(1.2)];
        let loose = SimOptions { reltol: 1e-2, ..SimOptions::default() };
        let tight = SimOptions { reltol: 1e-8, lte_abstol: 1e-12, ..SimOptions::default() };
        let dl = lte_step_control(Method::Trapezoidal, 1.2, &xn, 0.3, &times, &refs, &loose);
        let dt = lte_step_control(Method::Trapezoidal, 1.2, &xn, 0.3, &times, &refs, &tight);
        assert!(dt.ratio > dl.ratio);
    }

    #[test]
    #[should_panic(expected = "lte needs")]
    fn insufficient_history_panics() {
        let opts = SimOptions::default();
        let times = [1.0];
        let x0 = [1.0];
        let refs: Vec<&[f64]> = vec![&x0];
        let xn = [2.0];
        let _ = lte_step_control(Method::Trapezoidal, 2.0, &xn, 1.0, &times, &refs, &opts);
    }
}
