//! Backward pipelining.
//!
//! With the history accepted up to `t_n` and a base step `h`, a serial
//! engine computes one point at `t_n + h`, then — at best — `t_n + h(1+r)`
//! in the *next* step, because the growth-ratio cap `r` limits how fast the
//! stride may stretch. Backward pipelining instead launches `p` concurrent
//! solves in one round:
//!
//! ```text
//!   t_1 = t_n + h            (what serial would compute)
//!   t_2 = t_1 + g*h          (the point serial would compute NEXT)
//!   ...
//!   t_p = t_{p-1} + g^{p-1}*h
//! ```
//!
//! Every task integrates *from the same accepted history at `t_n`* (a
//! variable-step companion model needs only already-accepted points), so the
//! tasks are fully independent — this is the paper's "moving backwards in
//! time": the extra threads fill in the trailing points behind the leading
//! one. Commits happen left to right, each under the serial engine's exact
//! Newton and LTE tests (using each point's true integration stride), so an
//! inaccurate lead is simply discarded and no accepted point is ever worse
//! than serial. Per round the critical path is ~one solve, while simulated
//! time advances by up to `h*(1 + g + ... + g^{p-1})`.

use crate::options::Scheme;
use crate::options::WavePipeOptions;
use crate::pipeline::{drive, usable_prefix, Commit, Driver, Task};
use crate::report::{RunOutcome, WavePipeReport};
use wavepipe_circuit::Circuit;
use wavepipe_engine::Result;
use wavepipe_telemetry::{Counter, DiscardReason, EventKind};

/// Runs a backward-pipelined transient analysis.
///
/// # Errors
///
/// Same failure modes as the serial engine
/// ([`wavepipe_engine::run_transient`]).
pub fn run_backward(
    circuit: &Circuit,
    tstep: f64,
    tstop: f64,
    wp: &WavePipeOptions,
) -> Result<WavePipeReport> {
    run_backward_recoverable(circuit, tstep, tstop, wp)?.into_result()
}

/// Fault-tolerant variant of [`run_backward`]: a mid-run failure (deadline,
/// cancellation, lead-solver loss) yields the report over the accepted
/// prefix alongside the error.
///
/// # Errors
///
/// Pre-run failures only (bad parameters, compile, DC operating point).
pub fn run_backward_recoverable(
    circuit: &Circuit,
    tstep: f64,
    tstop: f64,
    wp: &WavePipeOptions,
) -> Result<RunOutcome> {
    let mut drv = Driver::new(circuit, tstep, tstop, wp)?;
    let width = wp.width();
    let error = drive(&mut drv, width, backward_round);
    Ok(RunOutcome { report: drv.finish(Scheme::Backward), error })
}

/// One backward-pipelined round: build the ladder, solve concurrently,
/// commit left to right. Returns the number of committed points.
///
/// # Errors
///
/// Same failure modes as the serial engine.
pub(crate) fn backward_round(drv: &mut Driver, width: usize) -> Result<usize> {
    let wp = drv.wp.clone();
    drv.h = drv.h.clamp(drv.hmin, drv.hmax);
    // Ladder with LTE-budget-limited width (full width in growth phases,
    // base-only when error-bound).
    let targets = drv.backward_ladder(width);
    let (targets, hit) = drv.clip_targets(&targets);
    wp.sim.probe.emit(drv.hw.t(), EventKind::RoundStart { width: targets.len() as u32 });

    // All tasks share the same (true) history snapshot.
    let tasks: Vec<Task> =
        targets.iter().map(|&t| Task { hw: drv.hw.clone(), t, guess: None }).collect();
    let sols = drv.solve_round(tasks, wp.sim.max_newton_iters)?;

    // Account the concurrent work and drop anything past a lost worker —
    // every pool task is speculative, so truncation is always safe.
    let (solutions, _truncated) = usable_prefix(drv, sols, usize::MAX)?;

    // Left-to-right commit under serial-identical tests. Rescued points
    // (recovery ladder at the step floor) are counted separately: they are
    // real commits, but never land on the horizon target.
    let mut committed = 0usize;
    let mut rescued_commits = 0usize;
    for (i, sol) in solutions.iter().enumerate() {
        let h_attempt = sol.coeffs.h;
        match drv.try_commit(sol) {
            Commit::Accepted { h_next } => {
                committed += 1;
                if i > 0 {
                    drv.lead_accepted += 1;
                    drv.note_lead(true);
                    wp.sim.probe.emit(sol.t, EventKind::LeadAccepted);
                    wp.sim.metrics.inc(Counter::LeadAccepted);
                }
                drv.h = h_next;
            }
            Commit::RejectedLte { h_retry } => {
                if i == 0 {
                    drv.base_lte_reject(h_attempt, h_retry);
                } else {
                    drv.lead_rejected += 1;
                    drv.note_lead(false);
                    wp.sim.probe.emit(
                        sol.t,
                        EventKind::LeadDiscarded { reason: DiscardReason::LteRejected },
                    );
                    wp.sim.metrics.inc(Counter::LeadDiscarded);
                    // The accepted prefix stands. The failed lead's retry
                    // proposal is relative to its larger stride, so it must
                    // not override a smaller base proposal.
                    drv.h = drv.h.min(h_retry).max(drv.hmin);
                }
                break;
            }
            Commit::RejectedNewton => {
                if i == 0 {
                    rescued_commits += usize::from(drv.newton_backoff(h_attempt, sol.iterations)?);
                } else {
                    drv.lead_rejected += 1;
                    drv.note_lead(false);
                    wp.sim.probe.emit(
                        sol.t,
                        EventKind::LeadDiscarded { reason: DiscardReason::NewtonRejected },
                    );
                    wp.sim.metrics.inc(Counter::LeadDiscarded);
                }
                break;
            }
        }
    }

    // The horizon (breakpoint) target is always last in the clipped
    // ladder, so landing happened iff every target committed.
    if hit && committed == targets.len() {
        drv.handle_breakpoint_landing();
    }
    let committed = committed + rescued_commits;
    wp.sim.probe.emit(drv.hw.t(), EventKind::RoundEnd { committed: committed as u32 });
    Ok(committed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::WavePipeOptions;
    use wavepipe_circuit::generators;
    use wavepipe_engine::{run_transient, SimOptions};

    fn wp(threads: usize) -> WavePipeOptions {
        // Pin serial stamping: these tests assert lane-level scheduling at
        // exact thread counts, which the `WAVEPIPE_STAMP_WORKERS` override
        // would otherwise fold into a smaller lane budget.
        WavePipeOptions::new(crate::options::Scheme::Backward, threads).with_stamp_workers(0)
    }

    #[test]
    fn backward_matches_serial_on_rc_ladder() {
        let b = generators::rc_ladder(8);
        let serial = run_transient(&b.circuit, b.tstep, b.tstop, &SimOptions::default()).unwrap();
        let rep = run_backward(&b.circuit, b.tstep, b.tstop, &wp(2)).unwrap();
        let probe = serial.unknown_of(&b.probes[0]).unwrap();
        let dev = serial.max_deviation(&rep.result, probe);
        assert!(dev < 0.02, "deviation vs serial = {dev}");
    }

    #[test]
    fn backward_reduces_critical_path_on_growth_heavy_circuit() {
        // Backward pipelining pays in the step-growth phases after source
        // discontinuities (where serial is limited to one rmax stretch per
        // solve); the pulsed power grid spends most of its time there.
        let b = generators::power_grid(4, 4);
        let serial = run_transient(&b.circuit, b.tstep, b.tstop, &SimOptions::default()).unwrap();
        let rep = run_backward(&b.circuit, b.tstep, b.tstop, &wp(2)).unwrap();
        let speedup = rep.modeled_speedup(serial.stats());
        assert!(speedup > 1.3, "modeled speedup = {speedup:.2}");
        assert!(rep.lead_accepted > 0);
    }

    #[test]
    fn one_thread_backward_degenerates_to_serial_behaviour() {
        let b = generators::rc_ladder(6);
        let rep = run_backward(&b.circuit, b.tstep, b.tstop, &wp(1)).unwrap();
        assert_eq!(rep.lead_accepted, 0);
        assert_eq!(rep.lead_rejected, 0);
        assert!(rep.result.len() > 10);
    }

    #[test]
    fn backward_handles_nonlinear_circuit() {
        // Pointwise deviation near the diode turn-on knee is dominated by
        // time-grid differences (the serial trap-vs-gear2 "noise floor" is
        // of the same magnitude), so the accuracy assertion uses the RMS
        // metric plus a generous pointwise band.
        let b = generators::diode_rectifier();
        let serial = run_transient(&b.circuit, b.tstep, b.tstop, &SimOptions::default()).unwrap();
        let rep = run_backward(&b.circuit, b.tstep, b.tstop, &wp(2)).unwrap();
        let eq = crate::verify::compare(&serial, &rep.result);
        assert!(eq.rms_rel() < 0.01, "rms deviation = {}", eq.rms_rel());
        assert!(eq.max_rel() < 0.10, "max deviation = {}", eq.max_rel());
    }
}
