//! Iterative (Krylov) linear-solver backend for grid-scale circuits.
//!
//! Direct sparse LU is unbeatable on the band-structured matrices of ladder
//! and line circuits, but on 2-D power-grid meshes fill-in grows superlinearly
//! and factorization starts to dominate the transient loop. [`GmresBackend`]
//! plugs restarted GMRES(m) ([`mod@wavepipe_sparse::gmres`]) into the
//! [`SolverBackend`] seam so grid-scale circuits
//! can trade the factorization for preconditioned matvecs — without touching
//! the Newton iteration, the step controller, or any calling code.
//!
//! # Preconditioning
//!
//! The backend preconditions with whichever approximate inverse is cheapest
//! and strongest at hand:
//!
//! * **Frozen chord-Newton LU factors.** When the inner [`DirectLu`] already
//!   holds a factorization (because a previous solve fell back to it), those
//!   possibly-stale factors are a near-perfect preconditioner for the nearby
//!   Jacobians chord Newton produces — usually converging in one or two
//!   iterations.
//! * **ILU(0)** ([`wavepipe_sparse::Ilu0`]) of the current matrix otherwise.
//!
//! The preconditioner refreshes lazily on the first solve after a
//! [`factor`](crate::solver::SolverBackend::factor) (a fresh linearization)
//! and is deliberately kept across
//! [`refactor`](crate::solver::SolverBackend::refactor) calls — the same
//! stale-factor reuse bet chord Newton itself makes. The bet is policed:
//! when a solve converges but needs more than a quarter of a restart cycle,
//! the backend eagerly refactors the direct solver on the current matrix so
//! the next solve is preconditioned by fresh factors — otherwise the drift
//! between the frozen factors and the walking Jacobian compounds until
//! every solve exhausts its entire iteration budget *while still
//! converging*, which no fallback would ever catch.
//!
//! # Fallback and the bit-identity contract
//!
//! GMRES on an ill-conditioned MNA matrix can stagnate. Rather than weaken
//! the engine's convergence guarantees, every unconverged solve **falls back
//! to the inner [`DirectLu`]** and completes exactly as the direct path
//! would. To make that exact, the backend defers direct factorization work
//! until it is actually needed: `factor`/`refactor` calls only record a
//! *pending sync* (fresh pivot search vs. frozen-pivot replay), and the
//! fallback replays it against the inner `DirectLu` before solving. Under
//! *forced* fallback (`max_iters = 0`, the `WAVEPIPE_GMRES_MAXITERS=0`
//! escape hatch) the inner backend therefore sees the exact call sequence
//! the reference [`DirectLu`] would have seen — including chord-Newton
//! solves against frozen factors and the `PivotDegraded` retry — so the
//! waveforms are **bitwise identical** to the direct path. The
//! solver-equivalence suite pins this.
//!
//! Known (documented) deviations under fallback: factorization errors such
//! as [`SparseError::Singular`] surface from `solve` rather than from
//! `factor`/`refactor` (the same error value propagates to the same caller),
//! and [`crate::SimStats`] factorization counters can differ on the rare
//! `PivotDegraded` retry path. Only waveform bits are pinned.

use std::cell::RefCell;
use std::fmt;
use std::sync::Arc;
use wavepipe_sparse::gmres::{gmres, GmresOptions};
use wavepipe_sparse::{CscMatrix, Ilu0, LuOptions, OrderingKind, Result, SparseError};

use crate::options::env_flag_value;
use crate::solver::{DirectLu, SolverBackend, SolverFactory, SolverHandle};

/// Tuning knobs for [`GmresBackend`], settable programmatically or from the
/// environment ([`GmresConfig::from_env`]).
#[derive(Debug, Clone, PartialEq)]
pub struct GmresConfig {
    /// Restart length `m` of GMRES(m). Default 30.
    pub restart: usize,
    /// Relative residual tolerance `‖b − A·x‖₂ ≤ tol · ‖b‖₂`. Default
    /// `1e-10` — tight enough that Newton convergence behaves as with a
    /// direct solve.
    pub tol: f64,
    /// Total iteration budget per solve; on exhaustion the solve falls back
    /// to direct LU. `0` forces the fallback for *every* solve (the escape
    /// hatch that is pinned bit-identical to [`DirectLu`]). Default 200.
    pub max_iters: usize,
    /// Fill-reducing ordering for the fallback direct factorizations.
    /// Default is the [`LuOptions`] default (minimum degree), which keeps
    /// forced fallback bit-identical to the reference direct path.
    pub ordering: OrderingKind,
}

impl Default for GmresConfig {
    fn default() -> Self {
        GmresConfig {
            restart: 30,
            tol: 1e-10,
            max_iters: 200,
            ordering: LuOptions::default().ordering,
        }
    }
}

/// Parses an ordering name as used by `WAVEPIPE_ORDERING` and the bench
/// tools: `natural`, `mindeg` (aliases `min-degree`, `min_degree`), `rcm`
/// (alias `reverse-cuthill-mckee`). Case-insensitive; `None` for anything
/// else.
pub fn parse_ordering(name: &str) -> Option<OrderingKind> {
    match name.trim().to_ascii_lowercase().as_str() {
        "natural" => Some(OrderingKind::Natural),
        "mindeg" | "min-degree" | "min_degree" => Some(OrderingKind::MinDegree),
        "rcm" | "reverse-cuthill-mckee" | "reverse_cuthill_mckee" => {
            Some(OrderingKind::ReverseCuthillMcKee)
        }
        _ => None,
    }
}

impl GmresConfig {
    /// Defaults overridden by `WAVEPIPE_GMRES_RESTART`,
    /// `WAVEPIPE_GMRES_TOL`, `WAVEPIPE_GMRES_MAXITERS`, and
    /// `WAVEPIPE_ORDERING`. Unparsable values are ignored (defaults kept).
    pub fn from_env() -> Self {
        let mut cfg = GmresConfig::default();
        if let Some(v) = env_flag_value("WAVEPIPE_GMRES_RESTART").and_then(|s| s.parse().ok()) {
            cfg.restart = v;
        }
        if let Some(v) = env_flag_value("WAVEPIPE_GMRES_TOL").and_then(|s| s.parse().ok()) {
            cfg.tol = v;
        }
        if let Some(v) = env_flag_value("WAVEPIPE_GMRES_MAXITERS").and_then(|s| s.parse().ok()) {
            cfg.max_iters = v;
        }
        if let Some(k) = env_flag_value("WAVEPIPE_ORDERING").and_then(|s| parse_ordering(&s)) {
            cfg.ordering = k;
        }
        cfg
    }
}

/// Cumulative counters a Krylov-path backend accumulates across solves.
///
/// The Newton cache snapshots these around each linear solve and charges the
/// delta to [`crate::SimStats`] and the telemetry stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KrylovStats {
    /// Total GMRES iterations (Arnoldi steps) across all solves.
    pub iterations: u64,
    /// Total restart cycles beyond the first, across all solves.
    pub restarts: u64,
    /// Preconditioner (re)builds — ILU(0) factorizations or frozen-LU
    /// adoptions.
    pub precond_refreshes: u64,
    /// Solves completed by the direct-LU fallback (stagnation, budget
    /// exhaustion, non-finite breakdown, or `max_iters = 0`).
    pub fallbacks: u64,
}

/// How the inner [`DirectLu`] is brought up to date when a fallback solve
/// needs it: replay the deferred `factor` (fresh pivot search) or
/// `refactor` (frozen pivots) the Newton cache last requested.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PendingSync {
    /// The cache requested a full factorization with a fresh pivot search.
    Fresh,
    /// The cache requested a numeric refactorization replaying frozen pivots.
    Frozen,
}

#[derive(Debug)]
struct State {
    /// Fallback direct solver; its (possibly stale) factors double as the
    /// preferred preconditioner.
    direct: DirectLu,
    /// The current system matrix (kept so `solve` can run matvecs and build
    /// preconditioners; `factored()` means "a matrix is staged").
    matrix: Option<CscMatrix>,
    /// ILU(0) preconditioner of some recent matrix, if in use.
    ilu: Option<Ilu0>,
    /// Whether the frozen direct factors are the active preconditioner.
    use_frozen: bool,
    /// The preconditioner must be rebuilt before the next iterative solve.
    precond_stale: bool,
    /// Deferred direct-LU synchronization (see [`PendingSync`]).
    pending: Option<PendingSync>,
    /// Cumulative counters reported through
    /// [`SolverBackend::krylov_stats`].
    stats: KrylovStats,
}

/// Restarted-GMRES backend with ILU(0)/frozen-LU preconditioning and a
/// bit-exact direct-LU fallback. See the [module docs](self) for the design.
pub struct GmresBackend {
    cfg: GmresConfig,
    // `SolverBackend::solve` takes `&self`; the iterative path mutates
    // counters and lazily builds preconditioners, hence interior mutability.
    // Backends are per-solver state (never shared across threads), so a
    // RefCell is sufficient.
    state: RefCell<State>,
}

impl GmresBackend {
    /// A fresh, unfactored backend with the given configuration.
    pub fn new(cfg: GmresConfig) -> Self {
        let direct =
            DirectLu::with_options(LuOptions { ordering: cfg.ordering, ..LuOptions::default() });
        GmresBackend {
            cfg,
            state: RefCell::new(State {
                direct,
                matrix: None,
                ilu: None,
                use_frozen: false,
                precond_stale: true,
                pending: None,
                stats: KrylovStats::default(),
            }),
        }
    }

    /// The configuration this backend runs with.
    pub fn config(&self) -> &GmresConfig {
        &self.cfg
    }

    /// Brings the inner direct solver up to date with the staged matrix,
    /// consuming the pending sync. Mirrors the call sequence the reference
    /// [`DirectLu`] would have seen, including the `PivotDegraded` retry.
    fn sync_direct(st: &mut State) -> Result<()> {
        let m = st.matrix.as_ref().expect("sync_direct requires a staged matrix");
        match st.pending.take() {
            Some(PendingSync::Fresh) => st.direct.factor(m),
            Some(PendingSync::Frozen) => {
                if st.direct.factored() {
                    match st.direct.refactor(m) {
                        Err(SparseError::PivotDegraded { .. }) => st.direct.factor(m),
                        other => other,
                    }
                } else {
                    st.direct.factor(m)
                }
            }
            None => {
                if st.direct.factored() {
                    Ok(())
                } else {
                    st.direct.factor(m)
                }
            }
        }
    }

    /// Completes a solve on the direct path (forced fallback, stagnation,
    /// budget exhaustion, or breakdown).
    fn fallback_solve(st: &mut State, b: &[f64], x: &mut [f64], scratch: &mut [f64]) -> Result<()> {
        st.stats.fallbacks += 1;
        Self::sync_direct(st)?;
        // The sync just brought the direct factors current. If the Krylov
        // path is not already preconditioning with them (first solve after
        // an ILU breakdown — MNA matrices with voltage-source branch rows
        // have structurally zero pivots ILU(0) cannot dodge), mark the
        // preconditioner stale so the next solve adopts the frozen factors
        // instead of falling back forever.
        if !st.use_frozen {
            st.precond_stale = true;
        }
        st.direct.solve(b, x, scratch)
    }

    /// Rebuilds the preconditioner if stale: prefer the direct solver's
    /// frozen factors, else ILU(0) of the staged matrix. An ILU breakdown
    /// (structurally or numerically zero pivot — routine on MNA matrices
    /// with voltage-source branch rows) leaves the backend without a
    /// preconditioner, which routes the solve to the fallback; the fallback
    /// then factors the matrix directly and re-marks the preconditioner
    /// stale, so the *next* solve runs GMRES preconditioned by those
    /// frozen factors.
    fn refresh_precond(st: &mut State) {
        if !st.precond_stale {
            return;
        }
        st.precond_stale = false;
        st.stats.precond_refreshes += 1;
        if st.direct.factored() {
            st.use_frozen = true;
            st.ilu = None;
        } else {
            st.use_frozen = false;
            st.ilu = Ilu0::factor(st.matrix.as_ref().expect("staged matrix")).ok();
        }
    }
}

impl fmt::Debug for GmresBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.state.borrow();
        f.debug_struct("GmresBackend")
            .field("cfg", &self.cfg)
            .field("staged", &st.matrix.is_some())
            .field("use_frozen", &st.use_frozen)
            .field("stats", &st.stats)
            .finish()
    }
}

impl SolverBackend for GmresBackend {
    fn factor(&mut self, a: &CscMatrix) -> Result<()> {
        let st = self.state.get_mut();
        st.matrix = Some(a.clone());
        st.pending = Some(PendingSync::Fresh);
        st.precond_stale = true;
        Ok(())
    }

    fn refactor(&mut self, a: &CscMatrix) -> Result<()> {
        let st = self.state.get_mut();
        let Some(m) = st.matrix.as_mut() else {
            return Err(SparseError::DimensionMismatch { expected: a.ncols(), found: 0 });
        };
        if m.col_ptr() == a.col_ptr() && m.row_idx() == a.row_idx() {
            m.values_mut().copy_from_slice(a.values());
        } else {
            st.matrix = Some(a.clone());
        }
        // A deferred fresh factorization subsumes a frozen replay; keep it.
        if st.pending != Some(PendingSync::Fresh) {
            st.pending = Some(PendingSync::Frozen);
        }
        // The preconditioner is deliberately kept stale-but-standing across
        // refactorizations (chord-style reuse).
        Ok(())
    }

    fn solve(&self, b: &[f64], x: &mut [f64], scratch: &mut [f64]) -> Result<()> {
        let mut st = self.state.borrow_mut();
        let st = &mut *st;
        if st.matrix.is_none() {
            return Err(SparseError::DimensionMismatch { expected: b.len(), found: 0 });
        }
        if self.cfg.max_iters == 0 {
            // Forced fallback: bit-identical to the reference direct path.
            return Self::fallback_solve(st, b, x, scratch);
        }
        Self::refresh_precond(st);
        if st.use_frozen || st.ilu.is_some() {
            let opts = GmresOptions {
                restart: self.cfg.restart,
                tol: self.cfg.tol,
                max_iters: self.cfg.max_iters,
            };
            x.fill(0.0);
            let matrix = st.matrix.as_ref().expect("staged matrix");
            let outcome = if st.use_frozen {
                let lu = st.direct.factors().expect("use_frozen implies factors");
                gmres(matrix, lu, b, x, &opts)
            } else {
                gmres(matrix, st.ilu.as_ref().expect("checked"), b, x, &opts)
            };
            match outcome {
                Ok(out) => {
                    st.stats.iterations += out.iterations as u64;
                    st.stats.restarts += out.restarts as u64;
                    if out.converged {
                        // Converged, but an iteration count creeping past a
                        // quarter restart-cycle means the preconditioner has
                        // drifted well behind the current Jacobian. A solve
                        // that *converges* never reaches the fallback, so
                        // without an eager resync here the drift compounds
                        // until every solve burns its whole budget (a ~100x
                        // slowdown, not a failure — the worst kind). Refresh
                        // the direct factors now; the next solve adopts them
                        // and drops back to a couple of iterations.
                        if out.iterations > self.cfg.restart / 4 + 1 {
                            if Self::sync_direct(st).is_ok() {
                                st.precond_stale = true;
                            } else {
                                // The resync is best-effort: if the current
                                // matrix will not factor, keep iterating on
                                // the old preconditioner (or ILU) and let a
                                // genuine fallback surface the error.
                                st.use_frozen = false;
                                st.ilu = None;
                                st.precond_stale = true;
                            }
                        }
                        return Ok(());
                    }
                    // Stagnation or budget exhaustion: the fallback will
                    // refresh the direct factors, which the next solve then
                    // adopts as a stronger preconditioner.
                    st.precond_stale = true;
                }
                Err(_) => {
                    // Non-finite breakdown; the direct path decides whether
                    // the matrix itself is bad.
                    st.precond_stale = true;
                }
            }
        }
        Self::fallback_solve(st, b, x, scratch)
    }

    fn factored(&self) -> bool {
        self.state.borrow().matrix.is_some()
    }

    fn invalidate(&mut self) {
        let st = self.state.get_mut();
        st.direct.invalidate();
        st.matrix = None;
        st.ilu = None;
        st.use_frozen = false;
        st.precond_stale = true;
        st.pending = None;
    }

    fn clone_box(&self) -> Box<dyn SolverBackend> {
        let st = self.state.borrow();
        Box::new(GmresBackend {
            cfg: self.cfg.clone(),
            state: RefCell::new(State {
                direct: st.direct.clone(),
                matrix: st.matrix.clone(),
                ilu: st.ilu.clone(),
                use_frozen: st.use_frozen,
                precond_stale: st.precond_stale,
                pending: st.pending,
                stats: st.stats,
            }),
        })
    }

    fn krylov_stats(&self) -> Option<KrylovStats> {
        Some(self.state.borrow().stats)
    }
}

#[derive(Debug)]
struct GmresFactory {
    cfg: GmresConfig,
}

impl SolverFactory for GmresFactory {
    fn make(&self) -> Box<dyn SolverBackend> {
        Box::new(GmresBackend::new(self.cfg.clone()))
    }
}

impl SolverHandle {
    /// [`GmresBackend`] instances with the given configuration — the
    /// iterative path behind `WAVEPIPE_SOLVER=gmres` and
    /// [`crate::SimOptions::with_solver`].
    pub fn gmres(cfg: GmresConfig) -> SolverHandle {
        SolverHandle::new(Arc::new(GmresFactory { cfg }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wavepipe_sparse::CooMatrix;

    /// A 2-D grid Laplacian shifted to be strictly diagonally dominant —
    /// the power-grid-shaped case GMRES exists for.
    fn grid(nx: usize, ny: usize, scale: f64) -> CscMatrix {
        let id = |i: usize, j: usize| i * ny + j;
        let mut t = CooMatrix::new(nx * ny, nx * ny);
        for i in 0..nx {
            for j in 0..ny {
                t.push(id(i, j), id(i, j), 4.5 * scale).unwrap();
                if i + 1 < nx {
                    t.push(id(i, j), id(i + 1, j), -scale).unwrap();
                    t.push(id(i + 1, j), id(i, j), -scale).unwrap();
                }
                if j + 1 < ny {
                    t.push(id(i, j), id(i, j + 1), -scale).unwrap();
                    t.push(id(i, j + 1), id(i, j), -scale).unwrap();
                }
            }
        }
        t.to_csc()
    }

    fn rhs(n: usize) -> Vec<f64> {
        (0..n).map(|i| ((i % 7) as f64) - 3.0).collect()
    }

    #[test]
    fn gmres_backend_solves_to_direct_accuracy() {
        let a = grid(6, 6, 1.0);
        let b = rhs(36);
        let mut backend = GmresBackend::new(GmresConfig::default());
        backend.factor(&a).unwrap();
        let mut x = vec![0.0; 36];
        let mut scratch = vec![0.0; 36];
        backend.solve(&b, &mut x, &mut scratch).unwrap();
        let mut r = vec![0.0; 36];
        a.residual_into(&x, &b, &mut r).unwrap();
        let rnorm = r.iter().map(|v| v * v).sum::<f64>().sqrt();
        let bnorm = b.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(rnorm <= 1e-9 * bnorm, "relative residual too large: {}", rnorm / bnorm);
        let stats = SolverBackend::krylov_stats(&backend).unwrap();
        assert!(stats.iterations > 0, "iterative path never ran");
        assert_eq!(stats.fallbacks, 0, "well-conditioned grid should not fall back");
        assert_eq!(stats.precond_refreshes, 1);
    }

    #[test]
    fn forced_fallback_is_bitwise_identical_to_direct_lu() {
        // max_iters = 0 forces every solve onto the inner DirectLu; replay a
        // factor/refactor/solve protocol (including chord-style repeated
        // solves on stale factors) against both backends and require bitwise
        // equality.
        let cfg = GmresConfig { max_iters: 0, ..GmresConfig::default() };
        let mut iterative = GmresBackend::new(cfg);
        let mut reference = DirectLu::new();
        let b = rhs(36);
        let mut xi = vec![0.0; 36];
        let mut xr = vec![0.0; 36];
        let mut s = vec![0.0; 36];
        for (step, scale) in [1.0, 1.5, 0.5, 2.0].into_iter().enumerate() {
            let a = grid(6, 6, scale);
            if step == 0 {
                iterative.factor(&a).unwrap();
                reference.factor(&a).unwrap();
            } else {
                iterative.refactor(&a).unwrap();
                reference.refactor(&a).unwrap();
            }
            // Newton-style repeated solves against the same factors.
            for _ in 0..2 {
                iterative.solve(&b, &mut xi, &mut s).unwrap();
                reference.solve(&b, &mut xr, &mut s).unwrap();
                assert_eq!(xi, xr, "forced fallback diverged at step {step}");
            }
        }
        let stats = SolverBackend::krylov_stats(&iterative).unwrap();
        assert_eq!(stats.iterations, 0);
        assert_eq!(stats.fallbacks, 8);
    }

    #[test]
    fn frozen_direct_factors_become_the_preconditioner() {
        // First solve falls back (budget too small for ILU alone to land
        // within one iteration), refreshing the direct factors; the next
        // factor()+solve() adopts them and converges immediately.
        let a = grid(5, 5, 1.0);
        let b = rhs(25);
        let cfg = GmresConfig { max_iters: 0, ..GmresConfig::default() };
        let mut backend = GmresBackend::new(cfg);
        backend.factor(&a).unwrap();
        let mut x = vec![0.0; 25];
        let mut s = vec![0.0; 25];
        backend.solve(&b, &mut x, &mut s).unwrap();
        assert_eq!(SolverBackend::krylov_stats(&backend).unwrap().fallbacks, 1);
        // Re-enable the iterative path with the factors now frozen (tests
        // live in the same module, so the private config is reachable).
        backend.cfg = GmresConfig::default();
        let a2 = grid(5, 5, 1.0001); // nearby Jacobian, chord-style
        backend.factor(&a2).unwrap();
        backend.solve(&b, &mut x, &mut s).unwrap();
        let stats = SolverBackend::krylov_stats(&backend).unwrap();
        assert_eq!(stats.fallbacks, 1, "frozen-LU preconditioning should converge iteratively");
        assert!(
            stats.iterations <= 3,
            "near-exact preconditioner should converge almost immediately, took {}",
            stats.iterations
        );
        let mut r = vec![0.0; 25];
        a2.residual_into(&x, &b, &mut r).unwrap();
        let rnorm = r.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(rnorm <= 1e-8, "residual {rnorm}");
    }

    #[test]
    fn stagnation_falls_back_and_still_solves() {
        // A tiny budget cannot converge from an ILU(0) start on this grid;
        // the solve must still succeed via the direct fallback.
        let a = grid(6, 6, 1.0);
        let b = rhs(36);
        let cfg = GmresConfig { max_iters: 1, restart: 1, tol: 1e-14, ..GmresConfig::default() };
        let mut backend = GmresBackend::new(cfg);
        backend.factor(&a).unwrap();
        let mut x = vec![0.0; 36];
        let mut s = vec![0.0; 36];
        backend.solve(&b, &mut x, &mut s).unwrap();
        let stats = SolverBackend::krylov_stats(&backend).unwrap();
        assert_eq!(stats.fallbacks, 1);
        let mut r = vec![0.0; 36];
        a.residual_into(&x, &b, &mut r).unwrap();
        let rnorm = r.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(rnorm <= 1e-8, "fallback solve inaccurate: {rnorm}");
    }

    #[test]
    fn protocol_errors_match_direct_backend() {
        let mut backend = GmresBackend::new(GmresConfig::default());
        let b = rhs(4);
        let mut x = vec![0.0; 4];
        let mut s = vec![0.0; 4];
        assert!(!backend.factored());
        assert!(backend.solve(&b, &mut x, &mut s).is_err());
        assert!(backend.refactor(&grid(2, 2, 1.0)).is_err());
        backend.factor(&grid(2, 2, 1.0)).unwrap();
        assert!(backend.factored());
        backend.invalidate();
        assert!(!backend.factored());
        assert_eq!(SolverBackend::krylov_stats(&backend).unwrap(), KrylovStats::default());
    }

    #[test]
    fn clone_box_preserves_iterative_state() {
        let a = grid(4, 4, 1.0);
        let b = rhs(16);
        let mut backend = GmresBackend::new(GmresConfig::default());
        backend.factor(&a).unwrap();
        let mut x1 = vec![0.0; 16];
        let mut s = vec![0.0; 16];
        backend.solve(&b, &mut x1, &mut s).unwrap();
        let cloned = backend.clone_box();
        let mut x2 = vec![0.0; 16];
        cloned.solve(&b, &mut x2, &mut s).unwrap();
        assert_eq!(x1, x2, "clone must reproduce the same solve bitwise");
        assert_eq!(cloned.krylov_stats().unwrap().fallbacks, 0);
    }

    #[test]
    fn handle_and_config_plumbing() {
        let h = SolverHandle::gmres(GmresConfig::default());
        assert!(!h.is_direct());
        let made = h.make();
        assert!(!made.factored());
        assert!(made.krylov_stats().is_some());
        assert!(SolverHandle::direct().make().krylov_stats().is_none());
        assert_eq!(parse_ordering("RCM"), Some(OrderingKind::ReverseCuthillMcKee));
        assert_eq!(parse_ordering("mindeg"), Some(OrderingKind::MinDegree));
        assert_eq!(parse_ordering("natural"), Some(OrderingKind::Natural));
        assert_eq!(parse_ordering("bogus"), None);
    }

    #[test]
    fn deterministic_across_runs() {
        let a = grid(5, 5, 1.0);
        let b = rhs(25);
        let run = || {
            let mut backend = GmresBackend::new(GmresConfig::default());
            backend.factor(&a).unwrap();
            let mut x = vec![0.0; 25];
            let mut s = vec![0.0; 25];
            backend.solve(&b, &mut x, &mut s).unwrap();
            x
        };
        assert_eq!(run(), run());
    }
}
