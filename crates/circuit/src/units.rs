//! SPICE numeric literals: floating-point values with engineering suffixes.
//!
//! SPICE accepts `1k`, `2.2u`, `3meg`, `0.5m`, `10p`, optionally followed by
//! arbitrary unit letters that are ignored (`10pF`, `1kOhm`). Suffixes are
//! case-insensitive; `meg` must be matched before `m`.

use std::fmt;

/// Error returned when a SPICE numeric literal cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseValueError {
    text: String,
}

impl ParseValueError {
    /// The offending literal.
    pub fn text(&self) -> &str {
        &self.text
    }
}

impl fmt::Display for ParseValueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid spice numeric literal `{}`", self.text)
    }
}

impl std::error::Error for ParseValueError {}

/// Parses a SPICE numeric literal such as `1k`, `2.2uF`, `3meg`, `1e-9`.
///
/// Trailing unit letters after the scale suffix are ignored, matching SPICE
/// convention.
///
/// ```
/// use wavepipe_circuit::units::parse_value;
///
/// # fn main() -> Result<(), wavepipe_circuit::units::ParseValueError> {
/// assert_eq!(parse_value("1k")?, 1e3);
/// assert_eq!(parse_value("2.2u")?, 2.2e-6);
/// assert_eq!(parse_value("3MEG")?, 3e6);
/// assert_eq!(parse_value("10pF")?, 10e-12);
/// assert_eq!(parse_value("1e-9")?, 1e-9);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Returns [`ParseValueError`] if the literal has no leading number.
pub fn parse_value(s: &str) -> Result<f64, ParseValueError> {
    let t = s.trim();
    if t.is_empty() {
        return Err(ParseValueError { text: s.to_string() });
    }
    // Split the leading float: sign, digits, '.', digits, exponent.
    let bytes = t.as_bytes();
    let mut i = 0;
    if bytes[i] == b'+' || bytes[i] == b'-' {
        i += 1;
    }
    let digits_start = i;
    while i < bytes.len() && bytes[i].is_ascii_digit() {
        i += 1;
    }
    if i < bytes.len() && bytes[i] == b'.' {
        i += 1;
        while i < bytes.len() && bytes[i].is_ascii_digit() {
            i += 1;
        }
    }
    if i == digits_start || (i == digits_start + 1 && bytes[digits_start] == b'.') {
        return Err(ParseValueError { text: s.to_string() });
    }
    // Optional exponent — only if followed by digits (so `1e` falls through
    // to suffix handling, where `e` is not a scale and is ignored as units).
    if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
        let mut j = i + 1;
        if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
            j += 1;
        }
        let exp_digits = j;
        while j < bytes.len() && bytes[j].is_ascii_digit() {
            j += 1;
        }
        if j > exp_digits {
            i = j;
        }
    }
    let (num, rest) = t.split_at(i);
    let base: f64 = num.parse().map_err(|_| ParseValueError { text: s.to_string() })?;
    let scale = suffix_scale(rest);
    Ok(base * scale)
}

/// Maps a trailing suffix (case-insensitive, extra unit letters ignored) to
/// its scale factor. Unknown text scales by 1.0 per SPICE convention.
fn suffix_scale(rest: &str) -> f64 {
    let lower = rest.to_ascii_lowercase();
    if lower.starts_with("meg") {
        1e6
    } else if lower.starts_with("mil") {
        25.4e-6
    } else if let Some(c) = lower.chars().next() {
        match c {
            't' => 1e12,
            'g' => 1e9,
            'k' => 1e3,
            'm' => 1e-3,
            'u' => 1e-6,
            'n' => 1e-9,
            'p' => 1e-12,
            'f' => 1e-15,
            _ => 1.0,
        }
    } else {
        1.0
    }
}

/// Formats a value in engineering notation with a SPICE suffix, for reports.
///
/// ```
/// assert_eq!(wavepipe_circuit::units::format_eng(2.2e-6), "2.2u");
/// assert_eq!(wavepipe_circuit::units::format_eng(1500.0), "1.5k");
/// ```
pub fn format_eng(v: f64) -> String {
    if v == 0.0 {
        return "0".to_string();
    }
    let suffixes: [(f64, &str); 9] = [
        (1e12, "t"),
        (1e9, "g"),
        (1e6, "meg"),
        (1e3, "k"),
        (1.0, ""),
        (1e-3, "m"),
        (1e-6, "u"),
        (1e-9, "n"),
        (1e-12, "p"),
    ];
    let mag = v.abs();
    for (scale, suf) in suffixes {
        if mag >= scale {
            let scaled = v / scale;
            // Trim trailing zeros from a fixed representation.
            let s = format!("{scaled:.4}");
            let s = s.trim_end_matches('0').trim_end_matches('.');
            return format!("{s}{suf}");
        }
    }
    format!("{v:e}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_numbers() {
        assert_eq!(parse_value("42").unwrap(), 42.0);
        assert_eq!(parse_value("-3.5").unwrap(), -3.5);
        assert_eq!(parse_value("1e-9").unwrap(), 1e-9);
        assert_eq!(parse_value("2.5E6").unwrap(), 2.5e6);
    }

    #[test]
    fn standard_suffixes() {
        assert_eq!(parse_value("1t").unwrap(), 1e12);
        assert_eq!(parse_value("1g").unwrap(), 1e9);
        assert_eq!(parse_value("1meg").unwrap(), 1e6);
        assert_eq!(parse_value("1k").unwrap(), 1e3);
        assert_eq!(parse_value("1m").unwrap(), 1e-3);
        assert_eq!(parse_value("1u").unwrap(), 1e-6);
        assert_eq!(parse_value("1n").unwrap(), 1e-9);
        assert_eq!(parse_value("1p").unwrap(), 1e-12);
        assert_eq!(parse_value("1f").unwrap(), 1e-15);
    }

    #[test]
    fn meg_not_milli() {
        assert_eq!(parse_value("2MEG").unwrap(), 2e6);
        assert_eq!(parse_value("2Meg").unwrap(), 2e6);
        assert_eq!(parse_value("2M").unwrap(), 2e-3);
    }

    #[test]
    fn unit_letters_ignored() {
        assert_eq!(parse_value("10pF").unwrap(), 10e-12);
        assert_eq!(parse_value("1kOhm").unwrap(), 1e3);
        assert_eq!(parse_value("5Volts").unwrap(), 5.0);
    }

    #[test]
    fn mil_suffix() {
        assert!((parse_value("2mil").unwrap() - 50.8e-6).abs() < 1e-12);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_value("").is_err());
        assert!(parse_value("k1").is_err());
        assert!(parse_value("--3").is_err());
        assert!(parse_value(".").is_err());
    }

    #[test]
    fn bare_exponent_letter_treated_as_units() {
        // `1e` has no exponent digits: the `e` is unit text, value 1.0.
        assert_eq!(parse_value("1e").unwrap(), 1.0);
    }

    #[test]
    fn format_round_trip() {
        for v in [1.0, 1e3, 2.2e-6, 5e-12, 3.3e6, 1500.0] {
            let s = format_eng(v);
            let back = parse_value(&s).unwrap();
            assert!((back - v).abs() <= 1e-9 * v.abs(), "{v} -> {s} -> {back}");
        }
    }

    #[test]
    fn format_zero() {
        assert_eq!(format_eng(0.0), "0");
    }
}
