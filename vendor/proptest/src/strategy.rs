//! The [`Strategy`] trait, primitive strategies over numeric ranges and
//! tuples, and the `prop_map` / `prop_flat_map` combinators.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree and no shrinking — a
/// strategy is just a deterministic sampler over a [`TestRng`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into `f` to build a dependent strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// The strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "strategy: empty f64 range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "strategy: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, u8, i64, i32);

macro_rules! tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
