//! Serial SPICE-style simulation engine for WavePipe.
//!
//! The engine implements the full classic transient-analysis stack from
//! scratch:
//!
//! * [`MnaSystem`] — circuit compilation to modified nodal analysis with a
//!   frozen sparse pattern and slot-table restamping ([`mna`]).
//! * Device linearisation with SPICE-grade numerical guards ([`devices`]):
//!   diode/BJT junction limiting, `limexp`, channel-symmetric level-1 MOSFET.
//! * Newton–Raphson with cached LU refactorization ([`newton`]) and DC
//!   operating point with gmin/source-stepping continuation ([`dcop`]).
//! * Variable-step integration (backward Euler, trapezoidal, Gear2/BDF2
//!   with true variable-step coefficients, [`integrate`]), divided-difference
//!   LTE control ([`lte`]), and source-breakpoint handling ([`transient`]).
//!
//! Beyond transient analysis the engine provides the surrounding toolbox:
//! AC small-signal sweeps ([`ac`]), DC transfer sweeps ([`dcsweep`]),
//! adjoint DC sensitivities ([`sensitivity`]), `.measure`-style waveform
//! post-processing ([`measure`]), FFT/THD spectral analysis ([`spectrum`]),
//! `.op` reports ([`dcop::format_dc_op`]), and SPICE rawfile export
//! ([`rawfile`]).
//!
//! The transient loop is deliberately factored into [`HistoryWindow`] +
//! [`PointSolver`] so that `wavepipe-core` can solve *multiple adjacent time
//! points concurrently* with exactly the same numerics as the serial loop.
//!
//! # Example
//!
//! ```
//! use wavepipe_circuit::{Circuit, Waveform};
//! use wavepipe_engine::{run_transient, SimOptions};
//!
//! # fn main() -> Result<(), wavepipe_engine::EngineError> {
//! let mut ckt = Circuit::new("rc");
//! let a = ckt.node("a");
//! let b = ckt.node("b");
//! ckt.add_vsource("V1", a, Circuit::GROUND, Waveform::pulse(0.0, 1.0, 0.0, 1e-9, 1e-9, 1.0, 0.0))?;
//! ckt.add_resistor("R1", a, b, 1e3)?;
//! ckt.add_capacitor("C1", b, Circuit::GROUND, 1e-9)?;
//! let result = run_transient(&ckt, 1e-8, 5e-6, &SimOptions::default())?;
//! let vb = result.unknown_of("b").expect("node exists");
//! assert!(result.sample(vb, 5e-6) > 0.98); // fully charged
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ac;
pub mod cancel;
pub mod dcop;
pub mod dcsweep;
pub mod devices;
mod error;
pub mod fault;
pub mod integrate;
pub mod krylov;
pub mod lane;
pub mod lte;
pub mod measure;
pub mod mna;
pub mod newton;
mod options;
pub mod parstamp;
pub mod rawfile;
pub mod recovery;
mod result;
pub mod sensitivity;
pub mod solver;
pub mod spectrum;
mod stats;
pub mod transient;

pub use ac::{run_ac, AcResult, Phasor};
pub use cancel::CancelToken;
pub use dcsweep::{run_dc_sweep, DcSweepResult};
pub use error::{ConvergenceReport, EngineError, RecoveryRung, Result};
pub use fault::{FaultHandle, FaultKind, FaultPlan};
pub use integrate::{IntegCoeffs, Method};
pub use krylov::{parse_ordering, GmresBackend, GmresConfig, KrylovStats};
pub use lane::{run_lane_group, LaneOutcome, SimdBatchedLu};
pub use mna::{MnaSystem, MnaWorkspace, StampInput, StampResult};
pub use options::{CacheCtl, SimOptions};
pub use parstamp::StampExecutor;
pub use result::TransientResult;
pub use sensitivity::{run_dc_sensitivity, SensitivityResult};
pub use solver::{BatchedDirectLu, DirectLu, SolverBackend, SolverFactory, SolverHandle};
pub use stats::SimStats;
pub use transient::{
    run_transient, run_transient_compiled, run_transient_recoverable,
    run_transient_recoverable_compiled, HistoryWindow, PointSolution, PointSolver,
    TransientOutcome,
};
pub use wavepipe_telemetry as telemetry;
pub use wavepipe_telemetry::{MetricsHandle, MetricsRegistry, Probe, ProbeHandle, RecordingProbe};
