//! Criterion bench regenerating Table 2 (backward pipelining): wall-clock
//! cost of the serial engine vs backward pipelining at 2 threads on
//! representative circuits. On a single-core host the wall numbers mainly
//! document per-round overhead; the modelled speedups live in the `tables`
//! binary.

use criterion::{criterion_group, criterion_main, Criterion};
use wavepipe_circuit::generators;
use wavepipe_core::{run_wavepipe, Scheme, WavePipeOptions};
use wavepipe_engine::{run_transient, SimOptions};

fn bench_table2(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_backward");
    group.sample_size(10);
    for b in [generators::rc_ladder(40), generators::power_grid(6, 6)] {
        group.bench_function(format!("{}/serial", b.name), |bch| {
            bch.iter(|| {
                run_transient(&b.circuit, b.tstep, b.tstop, &SimOptions::default()).unwrap()
            })
        });
        group.bench_function(format!("{}/backward_x2", b.name), |bch| {
            let opts = WavePipeOptions::new(Scheme::Backward, 2);
            bch.iter(|| run_wavepipe(&b.circuit, b.tstep, b.tstop, &opts).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
