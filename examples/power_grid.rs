//! Mixed analog/digital scenario: IR-drop analysis of a power-distribution
//! grid under pulsed switching loads with diode clamps — the "large weakly
//! nonlinear network" class of the paper's evaluation.
//!
//! Reports the worst supply droop seen at the grid centre and the WavePipe
//! speedups; the droop figure is the quantity a power-integrity engineer
//! actually reads off this simulation.
//!
//! Run with: `cargo run --release --example power_grid`

use wavepipe::circuit::generators;
use wavepipe::core::{run_wavepipe, verify, Scheme, WavePipeOptions};
use wavepipe::engine::{run_transient, SimOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = generators::power_grid(8, 8);
    println!("circuit: {}", bench.circuit.summary());

    let serial = run_transient(&bench.circuit, bench.tstep, bench.tstop, &SimOptions::default())?;
    let centre = serial.unknown_of(&bench.probes[0]).expect("probe node");
    let vdd_nominal = 1.8;
    let worst_droop =
        serial.trace(centre).iter().map(|&(_, v)| vdd_nominal - v).fold(f64::MIN, f64::max);
    println!(
        "serial   : {} points; worst centre-node droop {:.1} mV ({:.2}% of VDD)",
        serial.len(),
        worst_droop * 1e3,
        worst_droop / vdd_nominal * 100.0
    );

    for (scheme, threads) in
        [(Scheme::Backward, 2), (Scheme::Backward, 3), (Scheme::Forward, 2), (Scheme::Combined, 4)]
    {
        let opts = WavePipeOptions::new(scheme, threads);
        let report = run_wavepipe(&bench.circuit, bench.tstep, bench.tstop, &opts)?;
        let eq = verify::compare(&serial, &report.result);
        let wp_centre = report.result.unknown_of(&bench.probes[0]).expect("probe node");
        let wp_droop = report
            .result
            .trace(wp_centre)
            .iter()
            .map(|&(_, v)| vdd_nominal - v)
            .fold(f64::MIN, f64::max);
        println!(
            "{:<9} x{}: speedup {:.2}x, droop {:.1} mV (Δ {:.3} mV), max dev {:.2e} V",
            scheme.to_string(),
            threads,
            report.modeled_speedup(serial.stats()),
            wp_droop * 1e3,
            (wp_droop - worst_droop).abs() * 1e3,
            eq.max_abs
        );
    }
    Ok(())
}
