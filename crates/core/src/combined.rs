//! Combined backward + forward pipelining.
//!
//! With `p` threads, `p - 1` solve a backward ladder (base point plus
//! enlarged-stride lead points, all from the shared accepted history) and
//! the last thread speculates *forward* past the ladder's lead using a
//! predicted lead solution as history. Backward points commit exactly as in
//! [`crate::backward`]; the forward point is refined against the true
//! history and committed only if the lead prediction held up.

use crate::forward::{prediction_close, speculate_next};
use crate::options::{Scheme, WavePipeOptions};
use crate::pipeline::{drive, usable_prefix, Commit, Driver, Task};
use crate::report::{RunOutcome, WavePipeReport};
use wavepipe_circuit::Circuit;
use wavepipe_engine::Result;
use wavepipe_telemetry::{Counter, DiscardReason, EventKind};

/// Runs the combined backward+forward pipelined transient analysis.
///
/// With fewer than 3 threads this degenerates to pure backward pipelining
/// (there is no spare thread to speculate with).
///
/// # Errors
///
/// Same failure modes as the serial engine
/// ([`wavepipe_engine::run_transient`]).
pub fn run_combined(
    circuit: &Circuit,
    tstep: f64,
    tstop: f64,
    wp: &WavePipeOptions,
) -> Result<WavePipeReport> {
    run_combined_recoverable(circuit, tstep, tstop, wp)?.into_result()
}

/// Fault-tolerant variant of [`run_combined`]: a mid-run failure (deadline,
/// cancellation, lead-solver loss) yields the report over the accepted
/// prefix alongside the error.
///
/// # Errors
///
/// Pre-run failures only (bad parameters, compile, DC operating point).
pub fn run_combined_recoverable(
    circuit: &Circuit,
    tstep: f64,
    tstop: f64,
    wp: &WavePipeOptions,
) -> Result<RunOutcome> {
    if wp.width() < 3 {
        let mut out = crate::backward::run_backward_recoverable(circuit, tstep, tstop, wp)?;
        out.report.scheme = Scheme::Combined;
        return Ok(out);
    }
    let mut drv = Driver::new(circuit, tstep, tstop, wp)?;
    let width = wp.width();
    let error = drive(&mut drv, width, combined_round);
    Ok(RunOutcome { report: drv.finish(Scheme::Combined), error })
}

/// One combined round: backward ladder of `width - 1` plus (in growth
/// phases) one forward speculative point. Returns the number of committed
/// points. Worker losses may shrink `width` down to 1 across the run, in
/// which case this degenerates to base-only backward rounds.
///
/// # Errors
///
/// Same failure modes as the serial engine.
pub(crate) fn combined_round(drv: &mut Driver, width: usize) -> Result<usize> {
    let wp = drv.wp.clone();
    let bp_width = width.saturating_sub(1).max(1);
    {
        drv.h = drv.h.clamp(drv.hmin, drv.hmax);
        // Backward ladder (LTE-budget-limited) plus one forward target —
        // but only when the ladder actually has leads: on base-only
        // (error-bound) rounds, speculating ahead commits sub-optimal
        // strides and pays a sequential refinement for each, a measured
        // net loss. Combined therefore degrades to plain backward rounds
        // outside growth phases.
        let mut targets = drv.backward_ladder(bp_width);
        let ladder_len = targets.len();
        // Speculate past the lead only while leads themselves are paying
        // (growth phases, tracked by the lead accept-rate EMA): in
        // error-bound operation the speculation commits sub-optimal strides
        // and pays a sequential refinement each round — a measured net loss.
        let speculate = drv.deep_mode();
        if speculate && ladder_len >= 2 {
            let last = *targets.last().expect("non-empty ladder");
            let prev = targets[ladder_len - 2];
            let fwd_gap = ((last - prev) * wp.fp_stride_factor).clamp(drv.hmin, drv.hmax);
            targets.push(last + fwd_gap);
        }
        let (targets, hit) = drv.clip_targets(&targets);
        wp.sim.probe.emit(drv.hw.t(), EventKind::RoundStart { width: targets.len() as u32 });
        let n_bp_targets = targets.len().min(ladder_len);
        let has_fwd = targets.len() > ladder_len;

        // Backward tasks share the true history; the forward task runs on a
        // lead-speculated window.
        let mut tasks: Vec<Task> = targets[..n_bp_targets]
            .iter()
            .map(|&tt| Task { hw: drv.hw.clone(), t: tt, guess: None })
            .collect();
        let mut lead_prediction: Option<Vec<f64>> = None;
        if has_fwd {
            let lead_t = targets[n_bp_targets - 1];
            let (spec_hw, pred) = speculate_next(drv, &drv.hw, lead_t);
            lead_prediction = Some(pred);
            tasks.push(Task { hw: spec_hw, t: targets[n_bp_targets], guess: None });
        }

        let sols = drv.solve_round(tasks, wp.sim.max_newton_iters)?;
        // Everything past a lost worker is dropped; ladder slots that went
        // missing simply leave the round short (`committed` stays below
        // `n_bp_targets`, so the forward point is discarded too).
        let (solutions, _truncated) = usable_prefix(drv, sols, n_bp_targets)?;

        // Commit the backward ladder left to right.
        let mut committed = 0usize;
        let mut rescued_commits = 0usize;
        for (i, sol) in solutions[..solutions.len().min(n_bp_targets)].iter().enumerate() {
            let h_attempt = sol.coeffs.h;
            match drv.try_commit(sol) {
                Commit::Accepted { h_next } => {
                    committed += 1;
                    if i > 0 {
                        drv.lead_accepted += 1;
                        wp.sim.probe.emit(sol.t, EventKind::LeadAccepted);
                        wp.sim.metrics.inc(Counter::LeadAccepted);
                    }
                    drv.h = h_next;
                }
                Commit::RejectedLte { h_retry } => {
                    if i == 0 {
                        drv.base_lte_reject(h_attempt, h_retry.max(drv.hmin));
                    } else {
                        drv.lead_rejected += 1;
                        drv.note_lead(false);
                        wp.sim.probe.emit(
                            sol.t,
                            EventKind::LeadDiscarded { reason: DiscardReason::LteRejected },
                        );
                        wp.sim.metrics.inc(Counter::LeadDiscarded);
                        drv.h = drv.h.min(h_retry).max(drv.hmin);
                    }
                    break;
                }
                Commit::RejectedNewton => {
                    if i == 0 {
                        // A rescued point counts toward the round's commits
                        // but is *not* the ladder target, so it must not
                        // mark the ladder complete (the forward window's
                        // speculated history is invalid either way).
                        rescued_commits +=
                            usize::from(drv.newton_backoff(h_attempt, sol.iterations)?);
                    } else {
                        drv.lead_rejected += 1;
                        drv.note_lead(false);
                        wp.sim.probe.emit(
                            sol.t,
                            EventKind::LeadDiscarded { reason: DiscardReason::NewtonRejected },
                        );
                        wp.sim.metrics.inc(Counter::LeadDiscarded);
                    }
                    break;
                }
            }
        }
        let ladder_complete = committed == n_bp_targets;

        // Forward point: valid only if the whole ladder committed and the
        // lead prediction was close to the true lead solution. A truncated
        // round may have dropped the forward slot entirely.
        let mut committed_all = ladder_complete;
        if has_fwd && solutions.len() <= n_bp_targets {
            committed_all = false;
        } else if has_fwd {
            let spec = &solutions[n_bp_targets];
            let lead_true = &solutions[n_bp_targets - 1].x;
            let pred_ok = ladder_complete
                && spec.converged
                && lead_prediction.as_deref().is_some_and(|p| prediction_close(drv, p, lead_true));
            if pred_ok {
                let refined = drv.refine_solve(spec.t, &spec.x, wp.fp_refine_iters)?;
                drv.account_sequential(&refined.stats);
                match drv.try_commit(&refined) {
                    Commit::Accepted { h_next } => {
                        drv.spec_accepted += 1;
                        wp.sim.probe.emit(refined.t, EventKind::SpeculationAccepted);
                        wp.sim.metrics.inc(Counter::SpeculationAccepted);
                        drv.h = h_next;
                        committed += 1;
                    }
                    Commit::RejectedLte { h_retry } => {
                        drv.total.steps_rejected_lte += 1;
                        drv.spec_rejected += 1;
                        wp.sim.probe.emit(
                            refined.t,
                            EventKind::SpeculationDiscarded { reason: DiscardReason::LteRejected },
                        );
                        wp.sim.metrics.inc(Counter::SpeculationDiscarded);
                        drv.h = h_retry;
                        committed_all = false;
                    }
                    Commit::RejectedNewton => {
                        drv.spec_rejected += 1;
                        wp.sim.probe.emit(
                            refined.t,
                            EventKind::SpeculationDiscarded {
                                reason: DiscardReason::NewtonRejected,
                            },
                        );
                        wp.sim.metrics.inc(Counter::SpeculationDiscarded);
                        committed_all = false;
                    }
                }
            } else {
                drv.spec_rejected += 1;
                let reason = if !ladder_complete {
                    DiscardReason::ChainBroken
                } else if !spec.converged {
                    DiscardReason::Unconverged
                } else {
                    DiscardReason::PredictionFar
                };
                wp.sim.probe.emit(spec.t, EventKind::SpeculationDiscarded { reason });
                wp.sim.metrics.inc(Counter::SpeculationDiscarded);
                committed_all = false;
            }
        }

        if hit && committed_all {
            drv.handle_breakpoint_landing();
        }
        let committed = committed + rescued_commits;
        wp.sim.probe.emit(drv.hw.t(), EventKind::RoundEnd { committed: committed as u32 });
        Ok(committed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wavepipe_circuit::generators;
    use wavepipe_engine::{run_transient, SimOptions};

    #[test]
    fn combined_matches_serial_on_rc_ladder() {
        let b = generators::rc_ladder(8);
        let serial = run_transient(&b.circuit, b.tstep, b.tstop, &SimOptions::default()).unwrap();
        let wp = WavePipeOptions::new(Scheme::Combined, 4);
        let rep = run_combined(&b.circuit, b.tstep, b.tstop, &wp).unwrap();
        let probe = serial.unknown_of(&b.probes[0]).unwrap();
        let dev = serial.max_deviation(&rep.result, probe);
        assert!(dev < 0.02, "deviation vs serial = {dev}");
    }

    #[test]
    fn combined_tracks_backward_on_growth_heavy_circuit() {
        // Combined = backward ladder + one speculative point: on a workload
        // where backward pays (pulsed grid), combined must stay in its
        // neighbourhood — the speculation may add or cost a little.
        let b = generators::power_grid(4, 4);
        let serial = run_transient(&b.circuit, b.tstep, b.tstop, &SimOptions::default()).unwrap();
        // Pin serial stamping so the `WAVEPIPE_STAMP_WORKERS` override cannot
        // shrink the lane budgets this comparison depends on.
        let bwd = crate::backward::run_backward(
            &b.circuit,
            b.tstep,
            b.tstop,
            &WavePipeOptions::new(Scheme::Backward, 2).with_stamp_workers(0),
        )
        .unwrap();
        let cmb = run_combined(
            &b.circuit,
            b.tstep,
            b.tstop,
            &WavePipeOptions::new(Scheme::Combined, 4).with_stamp_workers(0),
        )
        .unwrap();
        let s_bwd = bwd.modeled_speedup(serial.stats());
        let s_cmb = cmb.modeled_speedup(serial.stats());
        assert!(s_bwd > 1.15, "backward should pay here, got {s_bwd:.2}");
        assert!(s_cmb > s_bwd * 0.75, "combined ({s_cmb:.2}) should track backward ({s_bwd:.2})");
    }

    #[test]
    fn two_thread_combined_falls_back_to_backward() {
        let b = generators::rc_ladder(5);
        let wp = WavePipeOptions::new(Scheme::Combined, 2);
        let rep = run_combined(&b.circuit, b.tstep, b.tstop, &wp).unwrap();
        assert_eq!(rep.scheme, Scheme::Combined);
        assert_eq!(rep.speculation_accepted + rep.speculation_rejected, 0);
    }
}
