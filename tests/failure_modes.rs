//! Failure injection: the error surface must be informative and stable —
//! bad circuits and impossible analyses produce typed errors, not panics or
//! garbage results.

use wavepipe::circuit::{Circuit, DiodeModel, Waveform};
use wavepipe::core::{run_wavepipe, Scheme, WavePipeOptions};
use wavepipe::engine::{run_ac, run_dc_sweep, run_transient, EngineError, SimOptions};

#[test]
fn floating_node_is_rejected_before_simulation() {
    let mut ckt = Circuit::new("floating");
    let a = ckt.node("a");
    let f1 = ckt.node("f1");
    let f2 = ckt.node("f2");
    ckt.add_vsource("V1", a, Circuit::GROUND, Waveform::dc(1.0)).unwrap();
    ckt.add_resistor("Rg", a, Circuit::GROUND, 1e3).unwrap();
    ckt.add_resistor("Rf", f1, f2, 1e3).unwrap();
    let err = run_transient(&ckt, 1e-9, 1e-6, &SimOptions::default()).unwrap_err();
    assert!(matches!(err, EngineError::Circuit(_)), "got {err}");
    assert!(err.to_string().contains("path to ground"), "{err}");
    // WavePipe surfaces the same error.
    let err2 =
        run_wavepipe(&ckt, 1e-9, 1e-6, &WavePipeOptions::new(Scheme::Backward, 2)).unwrap_err();
    assert!(matches!(err2, EngineError::Circuit(_)));
}

#[test]
fn parallel_voltage_sources_report_singular_matrix() {
    // Two ideal sources forcing different voltages on the same node pair.
    let mut ckt = Circuit::new("vloop");
    let a = ckt.node("a");
    ckt.add_vsource("V1", a, Circuit::GROUND, Waveform::dc(1.0)).unwrap();
    ckt.add_vsource("V2", a, Circuit::GROUND, Waveform::dc(2.0)).unwrap();
    ckt.add_resistor("R1", a, Circuit::GROUND, 1e3).unwrap();
    let err = run_transient(&ckt, 1e-9, 1e-6, &SimOptions::default()).unwrap_err();
    // Either a singular linear system or a convergence failure, never a
    // silent "answer".
    assert!(matches!(err, EngineError::Linear(_) | EngineError::NoConvergence { .. }), "got {err}");
}

#[test]
fn nonpositive_analysis_windows_are_rejected() {
    let mut ckt = Circuit::new("ok");
    let a = ckt.node("a");
    ckt.add_vsource("V1", a, Circuit::GROUND, Waveform::dc(1.0)).unwrap();
    ckt.add_resistor("R1", a, Circuit::GROUND, 1e3).unwrap();
    for (tstep, tstop) in [(0.0, 1e-6), (1e-9, 0.0), (-1e-9, 1e-6), (1e-9, f64::NAN)] {
        let err = run_transient(&ckt, tstep, tstop, &SimOptions::default()).unwrap_err();
        assert!(matches!(err, EngineError::BadParameter { .. }), "({tstep},{tstop}): {err}");
    }
    assert!(run_ac(&ckt, &[0.0], &SimOptions::default()).is_err());
    assert!(run_ac(&ckt, &[], &SimOptions::default()).is_err());
    assert!(run_dc_sweep(&ckt, "V1", &[], &SimOptions::default()).is_err());
}

#[test]
fn empty_circuit_is_rejected() {
    let ckt = Circuit::new("empty");
    let err = run_transient(&ckt, 1e-9, 1e-6, &SimOptions::default()).unwrap_err();
    assert!(matches!(err, EngineError::Circuit(_)));
}

#[test]
fn antiparallel_diodes_with_huge_drive_still_converge_or_error_cleanly() {
    // A stress circuit: stiff source, antiparallel diodes, tiny resistor —
    // must either simulate or produce a typed error (no panic, no NaN).
    let mut ckt = Circuit::new("stress");
    let a = ckt.node("a");
    let d = ckt.node("d");
    ckt.add_vsource(
        "V1",
        a,
        Circuit::GROUND,
        Waveform::pulse(-50.0, 50.0, 0.0, 1e-12, 1e-12, 1e-9, 2e-9),
    )
    .unwrap();
    ckt.add_resistor("R1", a, d, 0.1).unwrap();
    ckt.add_diode("D1", d, Circuit::GROUND, DiodeModel::default()).unwrap();
    ckt.add_diode("D2", Circuit::GROUND, d, DiodeModel::default()).unwrap();
    match run_transient(&ckt, 1e-12, 10e-9, &SimOptions::default()) {
        Ok(res) => {
            for k in 0..res.len() {
                assert!(
                    res.solution(k).iter().all(|v| v.is_finite()),
                    "non-finite value escaped at point {k}"
                );
            }
        }
        Err(e) => {
            assert!(
                matches!(
                    e,
                    EngineError::NoConvergence { .. }
                        | EngineError::TimestepTooSmall { .. }
                        | EngineError::NumericalBlowup { .. }
                ),
                "unexpected error kind: {e}"
            );
        }
    }
}

#[test]
fn errors_format_usefully() {
    let samples: Vec<EngineError> = vec![
        EngineError::NoConvergence { time: 1e-9, iterations: 40 },
        EngineError::TimestepTooSmall { time: 2e-9, step: 1e-20, hmin: 1e-18 },
        EngineError::BadParameter { name: "tstop", value: -1.0 },
        EngineError::NumericalBlowup { time: 3e-9 },
        EngineError::UnknownSource { name: "Vx".into() },
    ];
    for e in samples {
        let msg = e.to_string();
        assert!(!msg.is_empty());
        assert_eq!(msg, msg.trim(), "no stray whitespace: {msg:?}");
        assert!(msg.chars().next().unwrap().is_lowercase(), "lowercase start: {msg}");
    }
}
